package cgra

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/ir"
	"repro/internal/merge"
	"repro/internal/pe"
	"repro/internal/pipeline"
	"repro/internal/rewrite"
)

func TestFabricGeometry(t *testing.T) {
	f := Default()
	if f.W != 32 || f.H != 16 {
		t.Fatalf("default fabric %dx%d, want 32x16", f.W, f.H)
	}
	pes, mems := f.PETiles(), f.MemTiles()
	if len(pes)+len(mems) != f.NumTiles() {
		t.Errorf("tiles %d + %d != %d", len(pes), len(mems), f.NumTiles())
	}
	// Every 4th column is memory: 8 columns x 16 rows.
	if len(mems) != 8*16 {
		t.Errorf("mem tiles = %d, want 128", len(mems))
	}
	if len(f.IOSites()) != 2*(32+16) {
		t.Errorf("IO sites = %d, want 96", len(f.IOSites()))
	}
	if f.KindAt(Coord{3, 0}) != TileMem || f.KindAt(Coord{0, 0}) != TilePE {
		t.Error("mem column stride wrong")
	}
	if f.KindAt(Coord{-1, 5}) != TileIO {
		t.Error("ring should be IO")
	}
}

func TestFabricNeighborsAndValidity(t *testing.T) {
	f := Default()
	if len(f.Neighbors(Coord{5, 5})) != 4 {
		t.Error("interior tile should have 4 neighbors")
	}
	if f.ValidCoord(Coord{-1, -1}) {
		t.Error("corner should be invalid")
	}
	if !f.ValidCoord(Coord{-1, 0}) {
		t.Error("west ring should be valid")
	}
}

// smallMapped maps the Fig. 3 convolution onto the baseline PE.
func smallMapped(t *testing.T) (*ir.Graph, *rewrite.Mapped) {
	t.Helper()
	g := ir.NewGraph("conv")
	var acc ir.NodeRef = -1
	for k := 0; k < 4; k++ {
		in := g.Input(string(rune('a' + k)))
		w := g.Const(uint16(2*k + 1))
		m := g.OpNode(ir.OpMul, in, w)
		if acc < 0 {
			acc = m
		} else {
			acc = g.OpNode(ir.OpAdd, acc, m)
		}
	}
	g.Output("out", g.OpNode(ir.OpAdd, acc, g.Const(5)))
	spec := pe.FromDatapath("base", merge.BaselinePE(ir.BaselineALUOps()))
	rs, err := rewrite.SynthesizeRuleSet(spec, nil, ir.BaselineALUOps())
	if err != nil {
		t.Fatal(err)
	}
	m, err := rewrite.MapApp(g, rs, "conv")
	if err != nil {
		t.Fatal(err)
	}
	return g, m
}

func TestPlaceSmall(t *testing.T) {
	_, m := smallMapped(t)
	p, err := Place(context.Background(), m, Default(), PlaceOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.wirelength() <= 0 {
		t.Error("zero wirelength for a connected design")
	}
}

func TestPlaceRejectsOversizedDesign(t *testing.T) {
	_, m := smallMapped(t)
	tiny := NewFabric(2, 2)
	if _, err := Place(context.Background(), m, tiny, PlaceOptions{}); err == nil {
		t.Fatal("expected capacity error on 2x2 fabric")
	}
}

func TestPlaceAllAppsFit(t *testing.T) {
	// Every benchmark must fit the paper's 32x16 fabric with the
	// baseline PE (Table 3 footprints).
	spec := pe.FromDatapath("base", merge.BaselinePE(ir.BaselineALUOps()))
	rs, err := rewrite.SynthesizeRuleSet(spec, nil, ir.BaselineALUOps())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range apps.All() {
		m, err := rewrite.MapApp(a.Graph, rs, a.Name)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		bal, _ := pipeline.BalanceApp(m, pipeline.AppOptions{PELatency: 1})
		p, err := Place(context.Background(), bal, Default(), PlaceOptions{Seed: 7, Moves: 20000})
		if err != nil {
			t.Errorf("%s: %v", a.Name, err)
			continue
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestRouteSmall(t *testing.T) {
	_, m := smallMapped(t)
	p, err := Place(context.Background(), m, Default(), PlaceOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := RouteAll(context.Background(), p, RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Every net routed, endpoints correct.
	nets := collectNets(m)
	if len(r.Routes) != len(nets) {
		t.Fatalf("routes = %d, nets = %d", len(r.Routes), len(nets))
	}
	for _, rt := range r.Routes {
		if rt.Path[0] != p.Loc[rt.Net.Src] || rt.Path[len(rt.Path)-1] != p.Loc[rt.Net.Dst] {
			t.Fatalf("route endpoints wrong: %v", rt)
		}
		for i := 0; i+1 < len(rt.Path); i++ {
			if manhattan(rt.Path[i], rt.Path[i+1]) != 1 {
				t.Fatalf("non-adjacent hop in route: %v", rt.Path)
			}
		}
	}
	// Capacity respected.
	for e, u := range r.Use16 {
		if u > p.Fabric.Tracks16 {
			t.Errorf("edge %v overused: %d > %d", e, u, p.Fabric.Tracks16)
		}
	}
}

func TestRouteCongestionResolves(t *testing.T) {
	// Funnel many nets through a narrow fabric to force negotiation.
	g := ir.NewGraph("fan")
	var sums []ir.NodeRef
	in := g.Input("x")
	for k := 0; k < 10; k++ {
		sums = append(sums, g.OpNode(ir.OpAdd, in, g.Const(uint16(k))))
	}
	acc := sums[0]
	for _, s := range sums[1:] {
		acc = g.OpNode(ir.OpAdd, acc, s)
	}
	g.Output("o", acc)
	spec := pe.FromDatapath("base", merge.BaselinePE(ir.BaselineALUOps()))
	rs, _ := rewrite.SynthesizeRuleSet(spec, nil, ir.BaselineALUOps())
	m, err := rewrite.MapApp(g, rs, "fan")
	if err != nil {
		t.Fatal(err)
	}
	f := NewFabric(8, 4)
	p, err := Place(context.Background(), m, f, PlaceOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	r, err := RouteAll(context.Background(), p, RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Iterations < 1 {
		t.Error("router reported zero iterations")
	}
}

func TestRoutingStats(t *testing.T) {
	_, m := smallMapped(t)
	p, _ := Place(context.Background(), m, Default(), PlaceOptions{Seed: 1})
	r, err := RouteAll(context.Background(), p, RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalHops() <= 0 {
		t.Error("no hops")
	}
	if r.MaxRouteHops() <= 0 || r.MaxRouteHops() > r.TotalHops() {
		t.Error("max hops inconsistent")
	}
	if r.UsedSBTiles() <= 0 {
		t.Error("no SB tiles used")
	}
	if r.RoutingOnlyTiles() < 0 {
		t.Error("negative routing-only tiles")
	}
}

func TestBitstreamDeterministicAndDecodable(t *testing.T) {
	_, m := smallMapped(t)
	p, _ := Place(context.Background(), m, Default(), PlaceOptions{Seed: 1})
	r, err := RouteAll(context.Background(), p, RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := GenerateBitstream(r)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := GenerateBitstream(r)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Size() == 0 {
		t.Fatal("empty bitstream")
	}
	if b1.Size() != b2.Size() {
		t.Fatal("bitstream size nondeterministic")
	}
	for i := range b1.Words {
		if b1.Words[i] != b2.Words[i] {
			t.Fatal("bitstream contents nondeterministic")
		}
	}
	// Track assignments within capacity.
	for k, track := range b1.TrackOf {
		rt := r.Routes[k[0]]
		capacity := p.Fabric.Tracks16
		if rt.Net.Bit {
			capacity = p.Fabric.Tracks1
		}
		if track < 0 || track >= capacity {
			t.Fatalf("track %d out of range", track)
		}
	}
}

func TestSimulateCombinationalMatchesEval(t *testing.T) {
	app, m := smallMapped(t)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		inputs := map[string][]uint16{}
		evalIn := map[string]uint16{}
		for _, in := range app.Inputs() {
			v := uint16(rng.Intn(1 << 16))
			inputs[app.Nodes[in].Name] = []uint16{v}
			evalIn[app.Nodes[in].Name] = v
		}
		want, _ := app.Eval(evalIn)
		got, err := Simulate(context.Background(), m, 0, inputs, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got["out"][0] != want["out"] {
			t.Fatalf("combinational sim %d != eval %d", got["out"][0], want["out"])
		}
	}
}

func TestSimulatePipelinedSteadyState(t *testing.T) {
	app, m := smallMapped(t)
	const peLat = 2
	bal, _ := pipeline.BalanceApp(m, pipeline.AppOptions{PELatency: peLat})
	lat := OutputLatencies(bal, peLat)["out"]
	if lat <= 0 {
		t.Fatal("zero latency for pipelined design")
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		inputs := map[string][]uint16{}
		evalIn := map[string]uint16{}
		for _, in := range app.Inputs() {
			v := uint16(rng.Intn(1 << 16))
			inputs[app.Nodes[in].Name] = []uint16{v}
			evalIn[app.Nodes[in].Name] = v
		}
		want, _ := app.Eval(evalIn)
		trace, err := Simulate(context.Background(), bal, peLat, inputs, lat+2)
		if err != nil {
			t.Fatal(err)
		}
		if got := trace["out"][lat]; got != want["out"] {
			t.Fatalf("steady state %d != eval %d (latency %d)", got, want["out"], lat)
		}
	}
}

// TestSimulateTimeVaryingStream checks full cycle accuracy: with a
// balanced design, the output at cycle t+L equals the combinational
// evaluation of the inputs presented at cycle t.
func TestSimulateTimeVaryingStream(t *testing.T) {
	app, m := smallMapped(t)
	const peLat = 1
	bal, _ := pipeline.BalanceApp(m, pipeline.AppOptions{PELatency: peLat, FIFOCutoff: 2})
	lat := OutputLatencies(bal, peLat)["out"]
	rng := rand.New(rand.NewSource(10))
	const cycles = 40
	inputs := map[string][]uint16{}
	names := []string{}
	for _, in := range app.Inputs() {
		names = append(names, app.Nodes[in].Name)
		stream := make([]uint16, cycles)
		for i := range stream {
			stream[i] = uint16(rng.Intn(1 << 16))
		}
		inputs[app.Nodes[in].Name] = stream
	}
	trace, err := Simulate(context.Background(), bal, peLat, inputs, cycles)
	if err != nil {
		t.Fatal(err)
	}
	for tm := 0; tm+lat < cycles; tm++ {
		evalIn := map[string]uint16{}
		for _, nm := range names {
			evalIn[nm] = inputs[nm][tm]
		}
		want, _ := app.Eval(evalIn)
		if got := trace["out"][tm+lat]; got != want["out"] {
			t.Fatalf("cycle %d: sim %d != eval %d", tm, got, want["out"])
		}
	}
}

func TestOutputLatenciesBalanced(t *testing.T) {
	_, m := smallMapped(t)
	bal, report := pipeline.BalanceApp(m, pipeline.AppOptions{PELatency: 3})
	lats := OutputLatencies(bal, 3)
	if lats["out"] != report.TotalLatency {
		t.Errorf("output latency %d != report latency %d", lats["out"], report.TotalLatency)
	}
}
