package cgra

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ir"
	"repro/internal/merge"
	"repro/internal/pe"
	"repro/internal/rewrite"
)

// randomMapped builds a random small mapped design for router fuzzing.
func randomMapped(t testing.TB, seed int64, nOps int) *rewrite.Mapped {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := ir.NewGraph("r")
	var words []ir.NodeRef
	for i := 0; i < 2+rng.Intn(3); i++ {
		words = append(words, g.Input(string(rune('a'+i))))
	}
	ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpUMin, ir.OpXor}
	for i := 0; i < nOps; i++ {
		a := words[rng.Intn(len(words))]
		b := words[rng.Intn(len(words))]
		words = append(words, g.OpNode(ops[rng.Intn(len(ops))], a, b))
	}
	g.Output("o", words[len(words)-1])
	if rng.Intn(2) == 0 {
		g.Output("o2", g.Mem(words[rng.Intn(len(words))]))
	}
	spec := pe.FromDatapath("base", merge.BaselinePE(ir.BaselineALUOps()))
	rs, err := rewrite.SynthesizeRuleSet(spec, nil, ir.BaselineALUOps())
	if err != nil {
		t.Fatal(err)
	}
	m, err := rewrite.MapApp(g, rs, "r")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Property: on random designs and seeds, placement is legal and routing
// (when it converges) produces adjacent-hop paths with correct endpoints
// and within-capacity usage.
func TestRoutePropertyRandomDesigns(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		m := randomMapped(t, seed, 3+int(sizeRaw%20))
		fab := NewFabric(12, 6)
		p, err := Place(context.Background(), m, fab, PlaceOptions{Seed: seed, Moves: 5000})
		if err != nil {
			return true // capacity misses are fine for random sizes
		}
		if p.Validate() != nil {
			return false
		}
		r, err := RouteAll(context.Background(), p, RouteOptions{})
		if err != nil {
			return true // congestion failure is allowed; wrong answers are not
		}
		for _, rt := range r.Routes {
			if rt.Path[0] != p.Loc[rt.Net.Src] || rt.Path[len(rt.Path)-1] != p.Loc[rt.Net.Dst] {
				return false
			}
			for i := 0; i+1 < len(rt.Path); i++ {
				if manhattan(rt.Path[i], rt.Path[i+1]) != 1 {
					return false
				}
			}
		}
		for _, u := range r.Use16 {
			if u > fab.Tracks16 {
				return false
			}
		}
		for _, u := range r.Use1 {
			if u > fab.Tracks1 {
				return false
			}
		}
		// Bitstream generation must succeed and verify on any legal
		// routing.
		bs, err := GenerateBitstream(r)
		if err != nil {
			return false
		}
		return bs.VerifyAgainst(r) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: simulation of a placed design equals direct mapped-graph
// evaluation in steady state, for random designs.
func TestSimulatePropertyRandomDesigns(t *testing.T) {
	f := func(seed int64) bool {
		m := randomMapped(t, seed, 6)
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		inputs := map[string][]uint16{}
		evalIn := map[string]uint16{}
		for i := range m.Nodes {
			if m.Nodes[i].Kind == rewrite.KindInput {
				v := uint16(rng.Intn(1 << 16))
				inputs[m.Nodes[i].Name] = []uint16{v}
				evalIn[m.Nodes[i].Name] = v
			}
		}
		want, err := m.Eval(evalIn)
		if err != nil {
			return false
		}
		trace, err := Simulate(context.Background(), m, 0, inputs, 4)
		if err != nil {
			return false
		}
		for name, w := range want {
			series := trace[name]
			if series[len(series)-1] != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
