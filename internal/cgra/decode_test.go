package cgra

import (
	"context"
	"testing"

	"repro/internal/rewrite"
)

func routedSmall(t *testing.T) (*Routing, *Bitstream) {
	t.Helper()
	_, m := smallMapped(t)
	p, err := Place(context.Background(), m, Default(), PlaceOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := RouteAll(context.Background(), p, RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := GenerateBitstream(r)
	if err != nil {
		t.Fatal(err)
	}
	return r, bs
}

func TestDecodeRoundTrip(t *testing.T) {
	r, bs := routedSmall(t)
	tiles := bs.Decode()
	if len(tiles) == 0 {
		t.Fatal("decoded no tiles")
	}
	if err := bs.VerifyAgainst(r); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeConstValuesSurvive(t *testing.T) {
	r, bs := routedSmall(t)
	tiles := bs.Decode()
	m := r.Placement.Mapped
	for i := range m.Nodes {
		n := &m.Nodes[i]
		if n.Kind != rewrite.KindPE || len(n.ConstVals) == 0 {
			continue
		}
		dt := tiles[r.Placement.Loc[i]]
		if dt == nil {
			t.Fatalf("PE node %d tile missing from decode", i)
		}
		// Every per-site constant must appear among the tile's const
		// words.
		for _, want := range n.ConstVals {
			found := false
			for _, got := range dt.Consts {
				if got == uint32(want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("PE node %d: constant %d missing from decoded tile", i, want)
			}
		}
	}
}

func TestDecodeIOAndMemModes(t *testing.T) {
	r, bs := routedSmall(t)
	tiles := bs.Decode()
	m := r.Placement.Mapped
	ios, mems := 0, 0
	for i := range m.Nodes {
		switch m.Nodes[i].Kind {
		case rewrite.KindInput, rewrite.KindInputB, rewrite.KindOutput:
			dt := tiles[r.Placement.Loc[i]]
			if dt == nil || len(dt.IOMode) == 0 {
				t.Fatalf("IO node %d has no mode word", i)
			}
			ios++
		case rewrite.KindMem, rewrite.KindRom:
			dt := tiles[r.Placement.Loc[i]]
			if dt == nil || len(dt.MemMode) == 0 {
				t.Fatalf("mem node %d has no mode word", i)
			}
			mems++
		}
	}
	if ios == 0 {
		t.Error("no IO modes checked")
	}
}

func TestVerifyCatchesTampering(t *testing.T) {
	r, bs := routedSmall(t)
	// Drop all SB words: verification must notice.
	var kept []Word
	for _, w := range bs.Words {
		if int(w.Addr>>8&0xf) != featSB {
			kept = append(kept, w)
		}
	}
	tampered := &Bitstream{Words: kept, TrackOf: bs.TrackOf}
	if err := tampered.VerifyAgainst(r); err == nil {
		t.Fatal("verification accepted a bitstream with no switch settings")
	}
}
