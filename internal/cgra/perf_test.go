package cgra

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/ir"
	"repro/internal/merge"
	"repro/internal/pe"
	"repro/internal/pipeline"
	"repro/internal/rewrite"
)

// appBalanced maps an application onto the baseline PE and balances it
// with single-stage PE pipelining — the same preparation the evaluation
// harness does before PnR, so perf tests measure realistic designs.
func appBalanced(tb testing.TB, app *apps.App) *rewrite.Mapped {
	tb.Helper()
	spec := pe.FromDatapath("base", merge.BaselinePE(ir.BaselineALUOps()))
	rs, err := rewrite.SynthesizeRuleSet(spec, nil, ir.BaselineALUOps())
	if err != nil {
		tb.Fatal(err)
	}
	m, err := rewrite.MapApp(app.Graph, rs, app.Name)
	if err != nil {
		tb.Fatal(err)
	}
	bal, _ := pipeline.BalanceApp(m, pipeline.AppOptions{PELatency: 1})
	return bal
}

func cameraBalanced(tb testing.TB) *rewrite.Mapped { return appBalanced(tb, apps.Camera()) }

// annealClasses partitions a placement's nodes into the five resource
// classes exactly as placeOne does, so tests can drive annealState
// directly.
func annealClasses(p *Placement) [5][]int {
	var cl [5][]int
	for i := range p.Mapped.Nodes {
		switch p.Mapped.Nodes[i].Kind {
		case rewrite.KindPE:
			cl[0] = append(cl[0], i)
		case rewrite.KindRegFile:
			cl[1] = append(cl[1], i)
		case rewrite.KindMem, rewrite.KindRom:
			cl[2] = append(cl[2], i)
		case rewrite.KindInput, rewrite.KindInputB, rewrite.KindOutput:
			cl[3] = append(cl[3], i)
		case rewrite.KindReg:
			cl[4] = append(cl[4], i)
		}
	}
	return cl
}

// TestAnnealAllocs pins the annealer's inner loop at zero allocations
// per proposal: the epoch-stamped scratch state must absorb everything
// the old map-based cost function allocated.
func TestAnnealAllocs(t *testing.T) {
	bal := cameraBalanced(t)
	p, err := Place(context.Background(), bal, Default(), PlaceOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := newAnnealState(p, annealClasses(p), 10_000)
	if s == nil {
		t.Fatal("no anneal state for a real design")
	}
	rng := rand.New(rand.NewSource(7))
	avg := testing.AllocsPerRun(5000, func() { s.step(rng) })
	if avg > 0 {
		t.Errorf("anneal step allocates %.2f objects per move, want 0", avg)
	}
}

// TestRouteAllocs bounds the router's allocations per routed net. The
// dense-slice router allocates one exact-size path per net plus O(1)
// working state and the final usage maps; four objects per net is an
// order of magnitude under the old map-based router (~200/net) while
// leaving headroom against Go runtime noise.
func TestRouteAllocs(t *testing.T) {
	bal := cameraBalanced(t)
	p, err := Place(context.Background(), bal, Default(), PlaceOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	nets := collectNets(p.Mapped)
	if len(nets) == 0 {
		t.Fatal("no nets")
	}
	avg := testing.AllocsPerRun(5, func() {
		if _, err := RouteAll(context.Background(), p, RouteOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	perNet := avg / float64(len(nets))
	t.Logf("RouteAll: %.0f allocs total, %.2f per net (%d nets)", avg, perNet, len(nets))
	if perNet > 4 {
		t.Errorf("router allocates %.2f objects per routed net, want <= 4", perNet)
	}
}

// routingsEqual reports whether two routings agree on everything the
// rest of the pipeline consumes: paths, usage planes, iteration count.
func routingsEqual(t *testing.T, label string, a, b *Routing) {
	t.Helper()
	if a.Iterations != b.Iterations {
		t.Errorf("%s: iterations %d vs %d", label, a.Iterations, b.Iterations)
	}
	if len(a.Routes) != len(b.Routes) {
		t.Fatalf("%s: %d vs %d routes", label, len(a.Routes), len(b.Routes))
	}
	for i := range a.Routes {
		if a.Routes[i].Net != b.Routes[i].Net {
			t.Fatalf("%s: route %d nets differ", label, i)
		}
		if !reflect.DeepEqual(a.Routes[i].Path, b.Routes[i].Path) {
			t.Errorf("%s: route %d (%d->%d) paths differ:\n%v\n%v", label, i,
				a.Routes[i].Net.Src, a.Routes[i].Net.Dst, a.Routes[i].Path, b.Routes[i].Path)
			return
		}
	}
	if !reflect.DeepEqual(a.Use16, b.Use16) {
		t.Errorf("%s: Use16 differs", label)
	}
	if !reflect.DeepEqual(a.Use1, b.Use1) {
		t.Errorf("%s: Use1 differs", label)
	}
}

// TestIncrementalMatchesFullReroute: on real placements the incremental
// router must produce the same routing (paths, usage, iteration count)
// as the full-reroute reference implementation.
func TestIncrementalMatchesFullReroute(t *testing.T) {
	for _, app := range []*apps.App{apps.Camera(), apps.Harris(), apps.ResNet()} {
		bal := appBalanced(t, app)
		p, err := Place(context.Background(), bal, Default(), PlaceOptions{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		inc, err := RouteAll(context.Background(), p, RouteOptions{})
		if err != nil {
			t.Fatalf("%s incremental: %v", app.Name, err)
		}
		full, err := RouteAll(context.Background(), p, RouteOptions{FullReroute: true})
		if err != nil {
			t.Fatalf("%s full: %v", app.Name, err)
		}
		routingsEqual(t, app.Name, inc, full)
	}
}

// TestIncrementalConvergesUnderCongestion forces multi-round negotiation
// (a 3-track fabric) and checks the incremental router still converges
// to a capacity-compliant routing. Under real congestion incremental
// and full rip-up legitimately negotiate different (both valid)
// solutions — kept nets do not re-route — so this asserts convergence
// and legality rather than path equality.
func TestIncrementalConvergesUnderCongestion(t *testing.T) {
	bal := cameraBalanced(t)
	fab := Default()
	fab.Tracks16 = 3
	p, err := Place(context.Background(), bal, fab, PlaceOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := RouteAll(context.Background(), p, RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Iterations < 2 {
		t.Fatalf("expected multi-round negotiation on 3 tracks, converged in %d", r.Iterations)
	}
	for e, u := range r.Use16 {
		if u > fab.Tracks16 {
			t.Errorf("edge %v oversubscribed: %d > %d", e, u, fab.Tracks16)
		}
	}
	for e, u := range r.Use1 {
		if u > fab.Tracks1 {
			t.Errorf("1-bit edge %v oversubscribed: %d > %d", e, u, fab.Tracks1)
		}
	}
	// The same fabric must also converge under the reference full
	// reroute; both modes answer the same legality question.
	if _, err := RouteAll(context.Background(), p, RouteOptions{FullReroute: true}); err != nil {
		t.Fatalf("full reroute: %v", err)
	}
}

// TestPortfolioPlacement pins the portfolio's determinism contract:
// Seeds<=1 is byte-identical to a plain Place call, the selection is
// invariant to the concurrency bound, and widening the portfolio never
// worsens the selected wirelength.
func TestPortfolioPlacement(t *testing.T) {
	bal := cameraBalanced(t)
	fab := Default()
	single, err := Place(context.Background(), bal, fab, PlaceOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Place(context.Background(), bal, fab, PlaceOptions{Seed: 1, Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(single.Loc, one.Loc) {
		t.Error("Seeds=1 placement differs from the plain single-seed placement")
	}

	serial, err := Place(context.Background(), bal, fab, PlaceOptions{Seed: 1, Seeds: 4, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Place(context.Background(), bal, fab, PlaceOptions{Seed: 1, Seeds: 4, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Loc, wide.Loc) {
		t.Error("portfolio selection depends on the concurrency bound")
	}
	if ws, ww := single.wirelength(), wide.wirelength(); ww > ws {
		t.Errorf("portfolio of 4 selected wirelength %d, worse than single seed %d", ww, ws)
	}

	// Repeated runs are bit-stable.
	again, err := Place(context.Background(), bal, fab, PlaceOptions{Seed: 1, Seeds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Loc, wide.Loc) {
		t.Error("portfolio placement is not reproducible across runs")
	}
}

// TestPortfolioCapacityError: a design that cannot fit fails the same
// way through the portfolio path as through the single-seed path.
func TestPortfolioCapacityError(t *testing.T) {
	bal := cameraBalanced(t)
	fab := NewFabric(2, 2) // far too small for the camera pipeline
	_, errSingle := Place(context.Background(), bal, fab, PlaceOptions{Seed: 1})
	_, errWide := Place(context.Background(), bal, fab, PlaceOptions{Seed: 1, Seeds: 4})
	if errSingle == nil || errWide == nil {
		t.Fatal("expected capacity errors")
	}
	if fmt.Sprint(errSingle) != fmt.Sprint(errWide) {
		t.Errorf("portfolio capacity error %q differs from single-seed %q", errWide, errSingle)
	}
}
