// Package cgra models the CGRA fabric of the paper's Fig. 1 — a grid of
// PE and memory tiles joined by a statically configured interconnect of
// switch boxes (5 tracks per direction) and connection boxes — and
// implements placement (simulated annealing), routing (negotiated
// congestion), configuration bitstream generation, utilization
// accounting, and a cycle-accurate simulator used to validate mapped
// applications against the IR interpreter.
package cgra

import "fmt"

// TileKind discriminates fabric tiles.
type TileKind uint8

const (
	TilePE TileKind = iota
	TileMem
	TileIO
)

func (k TileKind) String() string {
	switch k {
	case TilePE:
		return "PE"
	case TileMem:
		return "MEM"
	case TileIO:
		return "IO"
	}
	return "?"
}

// Coord addresses a tile. The compute grid spans x in [0,W), y in [0,H);
// I/O sites ring the grid at x==-1, x==W, y==-1, y==H.
type Coord struct{ X, Y int }

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Fabric describes a CGRA instance.
type Fabric struct {
	W, H int
	// MemColumnStride places a memory-tile column every Nth column
	// (Garnet-style); 4 in the paper's fabric.
	MemColumnStride int
	// Tracks16 and Tracks1 are per-direction track counts between
	// adjacent tiles (the paper's SB has five 16-bit tracks; 1-bit
	// control uses narrower tracks).
	Tracks16 int
	Tracks1  int
	// MaxRegsPerTile caps interconnect pipeline registers hosted by one
	// tile's switch box.
	MaxRegsPerTile int
}

// NewFabric returns the paper's 32x16 fabric with a memory column every
// 4th column and 5 routing tracks.
func NewFabric(w, h int) *Fabric {
	return &Fabric{
		W: w, H: h,
		MemColumnStride: 4,
		Tracks16:        5,
		Tracks1:         2,
		MaxRegsPerTile:  10,
	}
}

// Default returns the paper's 32x16 evaluation fabric.
func Default() *Fabric { return NewFabric(32, 16) }

// KindAt reports the tile kind at a coordinate (TileIO on the ring).
func (f *Fabric) KindAt(c Coord) TileKind {
	if f.onRing(c) {
		return TileIO
	}
	if f.MemColumnStride > 0 && c.X%f.MemColumnStride == f.MemColumnStride-1 {
		return TileMem
	}
	return TilePE
}

func (f *Fabric) onRing(c Coord) bool {
	return c.X == -1 || c.X == f.W || c.Y == -1 || c.Y == f.H
}

// InGrid reports whether c is a compute-grid tile.
func (f *Fabric) InGrid(c Coord) bool {
	return c.X >= 0 && c.X < f.W && c.Y >= 0 && c.Y < f.H
}

// ValidCoord reports whether c is a grid tile or a ring I/O site
// (corners excluded — no tile adjacency).
func (f *Fabric) ValidCoord(c Coord) bool {
	if f.InGrid(c) {
		return true
	}
	onX := (c.X == -1 || c.X == f.W) && c.Y >= 0 && c.Y < f.H
	onY := (c.Y == -1 || c.Y == f.H) && c.X >= 0 && c.X < f.W
	return onX != onY
}

// PETiles returns all PE-tile coordinates in row-major order.
func (f *Fabric) PETiles() []Coord {
	var cs []Coord
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			c := Coord{x, y}
			if f.KindAt(c) == TilePE {
				cs = append(cs, c)
			}
		}
	}
	return cs
}

// MemTiles returns all memory-tile coordinates in row-major order.
func (f *Fabric) MemTiles() []Coord {
	var cs []Coord
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			c := Coord{x, y}
			if f.KindAt(c) == TileMem {
				cs = append(cs, c)
			}
		}
	}
	return cs
}

// IOSites returns the ring I/O coordinates.
func (f *Fabric) IOSites() []Coord {
	var cs []Coord
	for x := 0; x < f.W; x++ {
		cs = append(cs, Coord{x, -1}, Coord{x, f.H})
	}
	for y := 0; y < f.H; y++ {
		cs = append(cs, Coord{-1, y}, Coord{f.W, y})
	}
	return cs
}

// edgeDirs is the neighbor order shared by Neighbors and the dense edge
// index below — the PnR hot paths rely on the two agreeing.
var edgeDirs = [4]Coord{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}

// Neighbors returns the orthogonally adjacent valid coordinates.
func (f *Fabric) Neighbors(c Coord) []Coord {
	var ns []Coord
	for _, d := range edgeDirs {
		n := Coord{c.X + d.X, c.Y + d.Y}
		if f.ValidCoord(n) {
			ns = append(ns, n)
		}
	}
	return ns
}

// Dense site/edge indexing: the PnR hot paths address the padded
// (W+2)x(H+2) grid — compute tiles plus the I/O ring, corners included
// but never adjacent to anything — through flat indices so per-proposal
// and per-net state lives in preallocated slices instead of maps. A site
// owns four outgoing edges ordered like edgeDirs, so a directed edge is
// siteIndex*4+dir.

// numSites returns the padded site count, ring and corners included.
func (f *Fabric) numSites() int { return (f.W + 2) * (f.H + 2) }

// siteIndex maps a grid or ring coordinate to its dense index.
func (f *Fabric) siteIndex(c Coord) int32 { return int32((c.Y+1)*(f.W+2) + c.X + 1) }

// siteCoord inverts siteIndex.
func (f *Fabric) siteCoord(i int32) Coord {
	w := f.W + 2
	return Coord{int(i)%w - 1, int(i)/w - 1}
}

// NumTiles returns the compute-grid tile count.
func (f *Fabric) NumTiles() int { return f.W * f.H }

func manhattan(a, b Coord) int {
	dx, dy := a.X-b.X, a.Y-b.Y
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}
