package cgra

import (
	"context"
	"fmt"

	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/rewrite"
)

// Simulate runs a cycle-accurate functional simulation of the mapped
// (and typically balanced) design — the role Synopsys VCS plays in the
// paper's flow. PEs are combinational followed by peLatency pipeline
// stages; memory tiles delay one cycle; interconnect registers one
// cycle; register-file FIFOs their depth. inputs[name][t] is the value
// of the named input at cycle t (held at its last value afterwards).
// The result maps each output name to its per-cycle trace. Cancellation
// of ctx aborts between cycles with fault.ErrCanceled.
func Simulate(ctx context.Context, m *rewrite.Mapped, peLatency int, inputs map[string][]uint16, cycles int) (map[string][]uint16, error) {
	_, span := obs.StartSpan(ctx, "sim", obs.Int("cycles", cycles), obs.Int("nodes", len(m.Nodes)))
	defer span.End()
	type delayLine struct {
		buf []uint16
	}
	lines := make([]*delayLine, len(m.Nodes))
	latency := func(n *rewrite.MNode) int {
		switch n.Kind {
		case rewrite.KindPE:
			return peLatency
		case rewrite.KindMem, rewrite.KindRom:
			return 1
		case rewrite.KindReg:
			return 1
		case rewrite.KindRegFile:
			return n.Depth
		default:
			return 0
		}
	}
	for i := range m.Nodes {
		if l := latency(&m.Nodes[i]); l > 0 {
			lines[i] = &delayLine{buf: make([]uint16, l)}
		}
	}
	order := m.TopoOrder()
	vals := make([]uint16, len(m.Nodes))
	outs := map[string][]uint16{}
	for i := range m.Nodes {
		if m.Nodes[i].Kind == rewrite.KindOutput {
			outs[m.Nodes[i].Name] = make([]uint16, 0, cycles)
		}
	}
	at := func(stream []uint16, t int) uint16 {
		if len(stream) == 0 {
			return 0
		}
		if t >= len(stream) {
			return stream[len(stream)-1]
		}
		return stream[t]
	}
	for t := 0; t < cycles; t++ {
		if t&255 == 0 {
			if err := fault.Canceled(ctx); err != nil {
				return nil, err
			}
		}
		for _, i := range order {
			n := &m.Nodes[i]
			var comb uint16
			switch n.Kind {
			case rewrite.KindInput:
				comb = at(inputs[n.Name], t)
			case rewrite.KindInputB:
				comb = at(inputs[n.Name], t) & 1
			case rewrite.KindMem, rewrite.KindReg, rewrite.KindRegFile:
				comb = vals[n.Arg]
			case rewrite.KindRom:
				comb = ir.EvalOp(ir.OpRom, []uint16{vals[n.Arg]}, n.Val)
				// ROM lookup result enters the delay line below.
			case rewrite.KindOutput:
				vals[i] = vals[n.Arg]
				continue
			case rewrite.KindPE:
				cfg := n.Rule.Config.Clone()
				for cu, v := range n.ConstVals {
					cfg.ConstVals[cu] = v
				}
				for fu, tbl := range n.LUTTables {
					cfg.ConstVals[fu] = tbl
				}
				inVals := map[int]uint16{}
				for pos, p := range n.DataIn {
					inVals[pos] = vals[p]
				}
				bitVals := map[int]uint16{}
				for pos, p := range n.BitIn {
					bitVals[pos] = vals[p]
				}
				res, err := m.Spec.Evaluate(cfg, inVals, bitVals)
				if err != nil {
					return nil, fmt.Errorf("cgra: simulate PE %d: %w", i, err)
				}
				comb = res[n.Rule.OutUnit]
			}
			if l := lines[i]; l != nil {
				out := l.buf[0]
				copy(l.buf, l.buf[1:])
				l.buf[len(l.buf)-1] = comb
				vals[i] = out
			} else {
				vals[i] = comb
			}
		}
		for i := range m.Nodes {
			if m.Nodes[i].Kind == rewrite.KindOutput {
				outs[m.Nodes[i].Name] = append(outs[m.Nodes[i].Name], vals[i])
			}
		}
	}
	return outs, nil
}

// OutputLatencies computes, per output name, the cycle latency from
// inputs under the given PE latency, assuming a balanced design (all
// paths to each node agree).
func OutputLatencies(m *rewrite.Mapped, peLatency int) map[string]int {
	lat := make([]int, len(m.Nodes))
	res := map[string]int{}
	for _, i := range m.TopoOrder() {
		n := &m.Nodes[i]
		in := 0
		for _, p := range n.Producers() {
			if lat[p] > in {
				in = lat[p]
			}
		}
		own := 0
		switch n.Kind {
		case rewrite.KindPE:
			own = peLatency
		case rewrite.KindMem, rewrite.KindRom, rewrite.KindReg:
			own = 1
		case rewrite.KindRegFile:
			own = n.Depth
		}
		lat[i] = in + own
		if n.Kind == rewrite.KindOutput {
			res[n.Name] = lat[i]
		}
	}
	return res
}
