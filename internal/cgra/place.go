package cgra

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rewrite"
)

// Placement assigns every mapped node a fabric coordinate. PE and
// register-file nodes occupy PE tiles (a tile hosts at most one PE core
// and at most one register file — the register file is a separate
// resource within the tile, matching the paper's register-file
// pipelining); memory nodes occupy memory tiles; I/O nodes occupy ring
// sites; interconnect registers attach to any grid tile's switch box.
type Placement struct {
	Fabric *Fabric
	Mapped *rewrite.Mapped
	Loc    []Coord // per mapped node

	// netList caches the (producer, consumer) pairs; built once by the
	// first nets() call (Place always triggers it before the placement
	// is shared, so later concurrent readers see it populated).
	netList [][2]int
}

// PlaceOptions tunes the simulated-annealing placer.
type PlaceOptions struct {
	Seed  int64
	Moves int // annealing moves; 0 = default scaled by design size

	// Seeds widens placement into a deterministic portfolio: seeds
	// Seed..Seed+Seeds-1 anneal independently (concurrently, bounded by
	// Parallel) and the lowest-wirelength result wins, ties broken
	// toward the lowest seed — so the outcome never depends on how many
	// workers ran or which finished first. 0 or 1 keeps the single-seed
	// path bit-for-bit identical to a plain Place call.
	Seeds int
	// Parallel bounds concurrent portfolio anneals; 0 = GOMAXPROCS.
	Parallel int
}

// Place produces a legal placement minimizing estimated wirelength via
// greedy seeding followed by simulated annealing. Designs that exceed the
// fabric's tile budget fail with fault.ErrCapacity; cancellation of ctx
// aborts the annealing loop with fault.ErrCanceled.
func Place(ctx context.Context, m *rewrite.Mapped, f *Fabric, opt PlaceOptions) (*Placement, error) {
	if opt.Seeds > 1 {
		return placePortfolio(ctx, m, f, opt)
	}
	p, err := placeOne(ctx, m, f, opt.Seed, opt.Moves)
	if err != nil {
		return nil, err
	}
	obs.Observe(ctx, "place.wirelength", int64(p.wirelength()))
	return p, nil
}

// placePortfolio anneals opt.Seeds placements from consecutive seeds and
// keeps the best. Every candidate is deterministic in isolation, so the
// min-wirelength/lowest-seed selection rule makes the portfolio as a
// whole deterministic regardless of scheduling.
func placePortfolio(ctx context.Context, m *rewrite.Mapped, f *Fabric, opt PlaceOptions) (*Placement, error) {
	k := opt.Seeds
	par := opt.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > k {
		par = k
	}
	placements := make([]*Placement, k)
	errs := make([]error, k)
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			placements[i], errs[i] = placeOne(ctx, m, f, opt.Seed+int64(i), opt.Moves)
		}(i)
	}
	wg.Wait()
	if err := fault.Canceled(ctx); err != nil {
		return nil, err
	}
	best, bestWL := -1, 0
	for i, p := range placements {
		if errs[i] != nil {
			continue
		}
		if wl := p.wirelength(); best < 0 || wl < bestWL {
			best, bestWL = i, wl
		}
	}
	if best < 0 {
		// Placement failures (capacity) are seed-independent, so the
		// first seed's error speaks for the whole portfolio.
		return nil, errs[0]
	}
	obs.Add(ctx, "place.portfolio.anneals", int64(k))
	obs.Observe(ctx, "place.portfolio.pick", int64(best))
	obs.Observe(ctx, "place.wirelength", int64(bestWL))
	return placements[best], nil
}

// placeOne is the single-seed place flow: greedy seed, then anneal.
func placeOne(ctx context.Context, m *rewrite.Mapped, f *Fabric, seed int64, moves int) (*Placement, error) {
	if err := fault.Canceled(ctx); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	p := &Placement{Fabric: f, Mapped: m, Loc: make([]Coord, len(m.Nodes))}

	// Partition nodes by resource class.
	var peNodes, rfNodes, memNodes, ioNodes, regNodes []int
	for i := range m.Nodes {
		switch m.Nodes[i].Kind {
		case rewrite.KindPE:
			peNodes = append(peNodes, i)
		case rewrite.KindRegFile:
			rfNodes = append(rfNodes, i)
		case rewrite.KindMem, rewrite.KindRom:
			memNodes = append(memNodes, i)
		case rewrite.KindInput, rewrite.KindInputB, rewrite.KindOutput:
			ioNodes = append(ioNodes, i)
		case rewrite.KindReg:
			regNodes = append(regNodes, i)
		}
	}
	peSlots := f.PETiles()
	memSlots := f.MemTiles()
	ioSlots := f.IOSites()
	if len(peNodes) > len(peSlots) {
		return nil, fault.Capacityf("cgra: %d PEs exceed %d PE tiles", len(peNodes), len(peSlots))
	}
	if len(rfNodes) > len(peSlots) {
		return nil, fault.Capacityf("cgra: %d register files exceed %d PE tiles", len(rfNodes), len(peSlots))
	}
	if len(memNodes) > len(memSlots) {
		return nil, fault.Capacityf("cgra: %d memories exceed %d memory tiles", len(memNodes), len(memSlots))
	}
	if len(ioNodes) > len(ioSlots) {
		return nil, fault.Capacityf("cgra: %d IOs exceed %d IO sites", len(ioNodes), len(ioSlots))
	}

	// Greedy seed: BFS order of the mapped graph onto slot lists sorted
	// by distance from the grid center, so connected nodes start close.
	center := Coord{f.W / 2, f.H / 2}
	sortByCenter := func(cs []Coord) []Coord {
		out := append([]Coord(nil), cs...)
		sort.Slice(out, func(i, j int) bool {
			di, dj := manhattan(out[i], center), manhattan(out[j], center)
			if di != dj {
				return di < dj
			}
			if out[i].Y != out[j].Y {
				return out[i].Y < out[j].Y
			}
			return out[i].X < out[j].X
		})
		return out
	}
	peOrder := sortByCenter(peSlots)
	memOrder := sortByCenter(memSlots)
	ioOrder := sortByCenter(ioSlots)

	topo := m.TopoOrder()
	pi, mi, ii := 0, 0, 0
	rfOrder := append([]Coord(nil), peOrder...)
	ri := 0
	for _, i := range topo {
		switch m.Nodes[i].Kind {
		case rewrite.KindPE:
			p.Loc[i] = peOrder[pi]
			pi++
		case rewrite.KindRegFile:
			p.Loc[i] = rfOrder[ri]
			ri++
		case rewrite.KindMem, rewrite.KindRom:
			p.Loc[i] = memOrder[mi]
			mi++
		case rewrite.KindInput, rewrite.KindInputB, rewrite.KindOutput:
			p.Loc[i] = ioOrder[ii]
			ii++
		case rewrite.KindReg:
			// Registers float: seed at the grid center; annealing and
			// routing pull them onto sensible tiles.
			p.Loc[i] = Coord{rng.Intn(f.W), rng.Intn(f.H)}
		}
	}

	if err := p.anneal(ctx, rng, moves, [5][]int{peNodes, rfNodes, memNodes, ioNodes, regNodes}); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// nets enumerates (producer, consumer) pairs, cached on the Placement
// after the first call.
func (p *Placement) nets() [][2]int {
	if p.netList == nil {
		ns := make([][2]int, 0, len(p.Mapped.Nodes))
		for i := range p.Mapped.Nodes {
			for _, pr := range p.Mapped.Nodes[i].Producers() {
				ns = append(ns, [2]int{pr, i})
			}
		}
		p.netList = ns
	}
	return p.netList
}

func (p *Placement) wirelength() int {
	total := 0
	for _, n := range p.nets() {
		total += manhattan(p.Loc[n[0]], p.Loc[n[1]])
	}
	return total
}

// annealState is the flattened, preallocated working set of one
// annealing run: the per-node net lists in CSR form, class and free-slot
// tables, and an epoch-stamped scratch slice that replaces the
// per-proposal map — a stamp mismatch means "not seen this proposal", so
// "clearing" the set between proposals is a single counter increment and
// a proposal allocates nothing.
type annealState struct {
	p          *Placement
	netU, netV []int32 // per net id, endpoint nodes
	netOff     []int32 // CSR offsets: node i's net ids are netIDs[netOff[i]:netOff[i+1]]
	netIDs     []int32
	classes    [5][]int
	classOf    []int8
	movable    []int
	free       [][]Coord

	// locX/locY mirror p.Loc as flat int32 planes: the delta loops are
	// pure loads over them, and accepted proposals write both mirrors
	// and p.Loc.
	locX, locY []int32

	seen  []int32 // per net id, epoch stamp
	epoch int32

	t, cool float64
}

// newAnnealState builds the flat tables once per Place call. Returns nil
// when there is nothing to anneal (fewer than two movable nodes), before
// any RNG is consumed — matching the historical early return.
func newAnnealState(p *Placement, classes [5][]int, moves int) *annealState {
	var movable []int
	for _, cl := range classes {
		movable = append(movable, cl...)
	}
	if len(movable) < 2 {
		return nil
	}
	nets := p.nets()
	n := len(p.Mapped.Nodes)
	// CSR over (node -> incident net ids); a self-loop net is listed
	// once, exactly as the old per-node append built it.
	netOff := make([]int32, n+1)
	for _, nt := range nets {
		netOff[nt[0]+1]++
		if nt[1] != nt[0] {
			netOff[nt[1]+1]++
		}
	}
	for i := 0; i < n; i++ {
		netOff[i+1] += netOff[i]
	}
	netIDs := make([]int32, netOff[n])
	fill := make([]int32, n)
	for ni, nt := range nets {
		u, v := nt[0], nt[1]
		netIDs[netOff[u]+fill[u]] = int32(ni)
		fill[u]++
		if v != u {
			netIDs[netOff[v]+fill[v]] = int32(ni)
			fill[v]++
		}
	}
	classOf := make([]int8, n)
	for ci, cl := range classes {
		for _, nd := range cl {
			classOf[nd] = int8(ci)
		}
	}
	netU := make([]int32, len(nets))
	netV := make([]int32, len(nets))
	for ni, nt := range nets {
		netU[ni], netV[ni] = int32(nt[0]), int32(nt[1])
	}
	locX := make([]int32, n)
	locY := make([]int32, n)
	for i, c := range p.Loc {
		locX[i], locY[i] = int32(c.X), int32(c.Y)
	}
	t := float64(p.Fabric.W + p.Fabric.H)
	return &annealState{
		p:       p,
		netU:    netU,
		netV:    netV,
		netOff:  netOff,
		netIDs:  netIDs,
		classes: classes,
		classOf: classOf,
		movable: movable,
		free:    p.freeSlotsByClass(),
		locX:    locX,
		locY:    locY,
		seen:    make([]int32, len(nets)),
		t:       t,
		cool:    math.Pow(0.01/t, 1/float64(moves)),
	}
}

// manhattan32 is manhattan on the flat coordinate planes.
func manhattan32(ax, ay, bx, by int32) int32 {
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// anneal refines the placement with class-preserving swap/move proposals.
// It polls ctx periodically (every 4096 moves) so a long anneal cannot
// outlive a cancelled evaluation; the deterministic proposal sequence is
// unaffected when ctx stays live.
func (p *Placement) anneal(ctx context.Context, rng *rand.Rand, moves int, classes [5][]int) error {
	if moves <= 0 {
		moves = 200 * len(p.Mapped.Nodes)
		if moves > 400_000 {
			moves = 400_000
		}
	}
	s := newAnnealState(p, classes, moves)
	if s == nil {
		return nil
	}
	for step := 0; step < moves; step++ {
		if step&4095 == 0 {
			if err := fault.Canceled(ctx); err != nil {
				return err
			}
		}
		s.step(rng)
	}
	return nil
}

// step proposes and (maybe) applies one move or swap. The RNG draw
// sequence, acceptance math, and free-slot bookkeeping reproduce the
// pre-flattening annealer exactly, so placements are byte-identical per
// seed; the cost of a proposal is computed as an incremental delta over
// the touched nets without mutating the placement until acceptance.
func (s *annealState) step(rng *rand.Rand) {
	p := s.p
	a := s.movable[rng.Intn(len(s.movable))]
	ca := s.classOf[a]
	// Either swap with a same-class node or move to a free slot.
	if len(s.free[ca]) > 0 && rng.Intn(2) == 0 {
		si := rng.Intn(len(s.free[ca]))
		target := s.free[ca][si]
		if s.acceptDelta(s.moveDelta(a, int32(target.X), int32(target.Y)), rng) {
			old := p.Loc[a]
			p.Loc[a] = target
			s.locX[a], s.locY[a] = int32(target.X), int32(target.Y)
			s.free[ca][si] = old
		}
	} else {
		b := sameClassPeer(rng, s.classes[ca], a)
		if b < 0 {
			return // no cooling on a failed pairing, matching the old control flow
		}
		if s.acceptDelta(s.swapDelta(a, b), rng) {
			p.Loc[a], p.Loc[b] = p.Loc[b], p.Loc[a]
			s.locX[a], s.locX[b] = s.locX[b], s.locX[a]
			s.locY[a], s.locY[b] = s.locY[b], s.locY[a]
		}
	}
	s.t *= s.cool
}

// moveDelta is the wirelength change from relocating node a to (tx,ty).
// a's incident net ids are distinct, so no dedup pass is needed.
func (s *annealState) moveDelta(a int, tx, ty int32) int {
	a32 := int32(a)
	delta := int32(0)
	for _, ni := range s.netIDs[s.netOff[a]:s.netOff[a+1]] {
		u, v := s.netU[ni], s.netV[ni]
		ux, uy := s.locX[u], s.locY[u]
		vx, vy := s.locX[v], s.locY[v]
		old := manhattan32(ux, uy, vx, vy)
		if u == a32 {
			ux, uy = tx, ty
		}
		if v == a32 {
			vx, vy = tx, ty
		}
		delta += manhattan32(ux, uy, vx, vy) - old
	}
	return int(delta)
}

// swapDelta is the wirelength change from exchanging the locations of a
// and b. Nets incident to both are epoch-deduped so they count once,
// like the old map-based costAround(a, b).
func (s *annealState) swapDelta(a, b int) int {
	a32, b32 := int32(a), int32(b)
	ax, ay := s.locX[a], s.locY[a]
	bx, by := s.locX[b], s.locY[b]
	s.epoch++
	ep := s.epoch
	delta := int32(0)
	for pass := 0; pass < 2; pass++ {
		nd := a
		if pass == 1 {
			nd = b
		}
		for _, ni := range s.netIDs[s.netOff[nd]:s.netOff[nd+1]] {
			if s.seen[ni] == ep {
				continue
			}
			s.seen[ni] = ep
			u, v := s.netU[ni], s.netV[ni]
			ux, uy := s.locX[u], s.locY[u]
			vx, vy := s.locX[v], s.locY[v]
			old := manhattan32(ux, uy, vx, vy)
			if u == a32 {
				ux, uy = bx, by
			} else if u == b32 {
				ux, uy = ax, ay
			}
			if v == a32 {
				vx, vy = bx, by
			} else if v == b32 {
				vx, vy = ax, ay
			}
			delta += manhattan32(ux, uy, vx, vy) - old
		}
	}
	return int(delta)
}

// acceptDelta is the Metropolis criterion on an incremental cost delta.
// For integer deltas float64(before-after) == -float64(delta) exactly,
// and the Float64 draw happens iff delta > 0 — both identical to the old
// accepted(before, after) on full costs.
//
// The transcendental is bracketed before it is computed: for x <= 0,
// 1+x <= exp(x) <= 1/(1-x) with slack of order x^2/2. Here |x| >=
// 1/(W+H) (delta is a positive integer, t starts at W+H and only
// shrinks), so the slack dwarfs float rounding by >10 orders of
// magnitude and the cheap bounds decide u < exp(x) exactly; math.Exp
// runs only for draws inside the thin undecided band.
func (s *annealState) acceptDelta(delta int, rng *rand.Rand) bool {
	if delta <= 0 {
		return true
	}
	u := rng.Float64()
	x := -float64(delta) / s.t
	if u <= 1+x {
		return true
	}
	if u*(1-x) >= 1 {
		return false
	}
	return u < math.Exp(x)
}

func sameClassPeer(rng *rand.Rand, class []int, a int) int {
	if len(class) < 2 {
		return -1
	}
	for tries := 0; tries < 8; tries++ {
		b := class[rng.Intn(len(class))]
		if b != a {
			return b
		}
	}
	return -1
}

// freeSlotsByClass computes unoccupied slots per resource class
// (PE, RF, Mem, IO, Reg).
func (p *Placement) freeSlotsByClass() [][]Coord {
	occupied := map[Coord]map[int]bool{} // coord -> class set
	classAt := func(i int) int {
		switch p.Mapped.Nodes[i].Kind {
		case rewrite.KindPE:
			return 0
		case rewrite.KindRegFile:
			return 1
		case rewrite.KindMem, rewrite.KindRom:
			return 2
		case rewrite.KindInput, rewrite.KindInputB, rewrite.KindOutput:
			return 3
		default:
			return 4
		}
	}
	for i := range p.Mapped.Nodes {
		c := p.Loc[i]
		if occupied[c] == nil {
			occupied[c] = map[int]bool{}
		}
		occupied[c][classAt(i)] = true
	}
	free := make([][]Coord, 5)
	for _, c := range p.Fabric.PETiles() {
		if !occupied[c][0] {
			free[0] = append(free[0], c)
		}
		if !occupied[c][1] {
			free[1] = append(free[1], c)
		}
		free[4] = append(free[4], c)
	}
	for _, c := range p.Fabric.MemTiles() {
		if !occupied[c][2] {
			free[2] = append(free[2], c)
		}
		free[4] = append(free[4], c)
	}
	for _, c := range p.Fabric.IOSites() {
		if !occupied[c][3] {
			free[3] = append(free[3], c)
		}
	}
	return free
}

// Validate checks resource legality: kinds on compatible tiles and no
// double occupancy within a resource class.
func (p *Placement) Validate() error {
	peAt := map[Coord]int{}
	rfAt := map[Coord]int{}
	memAt := map[Coord]int{}
	ioAt := map[Coord]int{}
	for i := range p.Mapped.Nodes {
		c := p.Loc[i]
		kind := p.Mapped.Nodes[i].Kind
		switch kind {
		case rewrite.KindPE, rewrite.KindRegFile:
			if p.Fabric.KindAt(c) != TilePE {
				return fmt.Errorf("cgra: node %d (%s) on %s tile %s", i, kind, p.Fabric.KindAt(c), c)
			}
			reg := peAt
			if kind == rewrite.KindRegFile {
				reg = rfAt
			}
			if prev, ok := reg[c]; ok {
				return fmt.Errorf("cgra: nodes %d and %d share tile %s", prev, i, c)
			}
			reg[c] = i
		case rewrite.KindMem, rewrite.KindRom:
			if p.Fabric.KindAt(c) != TileMem {
				return fmt.Errorf("cgra: mem node %d on %s tile %s", i, p.Fabric.KindAt(c), c)
			}
			if prev, ok := memAt[c]; ok {
				return fmt.Errorf("cgra: mems %d and %d share tile %s", prev, i, c)
			}
			memAt[c] = i
		case rewrite.KindInput, rewrite.KindInputB, rewrite.KindOutput:
			if p.Fabric.KindAt(c) != TileIO {
				return fmt.Errorf("cgra: IO node %d on %s tile %s", i, p.Fabric.KindAt(c), c)
			}
			if prev, ok := ioAt[c]; ok {
				return fmt.Errorf("cgra: IOs %d and %d share site %s", prev, i, c)
			}
			ioAt[c] = i
		case rewrite.KindReg:
			if !p.Fabric.InGrid(c) {
				return fmt.Errorf("cgra: reg node %d off-grid at %s", i, c)
			}
		}
	}
	return nil
}
