package cgra

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/fault"
	"repro/internal/rewrite"
)

// Placement assigns every mapped node a fabric coordinate. PE and
// register-file nodes occupy PE tiles (a tile hosts at most one PE core
// and at most one register file — the register file is a separate
// resource within the tile, matching the paper's register-file
// pipelining); memory nodes occupy memory tiles; I/O nodes occupy ring
// sites; interconnect registers attach to any grid tile's switch box.
type Placement struct {
	Fabric *Fabric
	Mapped *rewrite.Mapped
	Loc    []Coord // per mapped node
}

// PlaceOptions tunes the simulated-annealing placer.
type PlaceOptions struct {
	Seed  int64
	Moves int // annealing moves; 0 = default scaled by design size
}

// Place produces a legal placement minimizing estimated wirelength via
// greedy seeding followed by simulated annealing. Designs that exceed the
// fabric's tile budget fail with fault.ErrCapacity; cancellation of ctx
// aborts the annealing loop with fault.ErrCanceled.
func Place(ctx context.Context, m *rewrite.Mapped, f *Fabric, opt PlaceOptions) (*Placement, error) {
	if err := fault.Canceled(ctx); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed + 1))
	p := &Placement{Fabric: f, Mapped: m, Loc: make([]Coord, len(m.Nodes))}

	// Partition nodes by resource class.
	var peNodes, rfNodes, memNodes, ioNodes, regNodes []int
	for i := range m.Nodes {
		switch m.Nodes[i].Kind {
		case rewrite.KindPE:
			peNodes = append(peNodes, i)
		case rewrite.KindRegFile:
			rfNodes = append(rfNodes, i)
		case rewrite.KindMem, rewrite.KindRom:
			memNodes = append(memNodes, i)
		case rewrite.KindInput, rewrite.KindInputB, rewrite.KindOutput:
			ioNodes = append(ioNodes, i)
		case rewrite.KindReg:
			regNodes = append(regNodes, i)
		}
	}
	peSlots := f.PETiles()
	memSlots := f.MemTiles()
	ioSlots := f.IOSites()
	if len(peNodes) > len(peSlots) {
		return nil, fault.Capacityf("cgra: %d PEs exceed %d PE tiles", len(peNodes), len(peSlots))
	}
	if len(rfNodes) > len(peSlots) {
		return nil, fault.Capacityf("cgra: %d register files exceed %d PE tiles", len(rfNodes), len(peSlots))
	}
	if len(memNodes) > len(memSlots) {
		return nil, fault.Capacityf("cgra: %d memories exceed %d memory tiles", len(memNodes), len(memSlots))
	}
	if len(ioNodes) > len(ioSlots) {
		return nil, fault.Capacityf("cgra: %d IOs exceed %d IO sites", len(ioNodes), len(ioSlots))
	}

	// Greedy seed: BFS order of the mapped graph onto slot lists sorted
	// by distance from the grid center, so connected nodes start close.
	center := Coord{f.W / 2, f.H / 2}
	sortByCenter := func(cs []Coord) []Coord {
		out := append([]Coord(nil), cs...)
		sort.Slice(out, func(i, j int) bool {
			di, dj := manhattan(out[i], center), manhattan(out[j], center)
			if di != dj {
				return di < dj
			}
			if out[i].Y != out[j].Y {
				return out[i].Y < out[j].Y
			}
			return out[i].X < out[j].X
		})
		return out
	}
	peOrder := sortByCenter(peSlots)
	memOrder := sortByCenter(memSlots)
	ioOrder := sortByCenter(ioSlots)

	topo := m.TopoOrder()
	pi, mi, ii := 0, 0, 0
	rfOrder := append([]Coord(nil), peOrder...)
	ri := 0
	for _, i := range topo {
		switch m.Nodes[i].Kind {
		case rewrite.KindPE:
			p.Loc[i] = peOrder[pi]
			pi++
		case rewrite.KindRegFile:
			p.Loc[i] = rfOrder[ri]
			ri++
		case rewrite.KindMem, rewrite.KindRom:
			p.Loc[i] = memOrder[mi]
			mi++
		case rewrite.KindInput, rewrite.KindInputB, rewrite.KindOutput:
			p.Loc[i] = ioOrder[ii]
			ii++
		case rewrite.KindReg:
			// Registers float: seed at the grid center; annealing and
			// routing pull them onto sensible tiles.
			p.Loc[i] = Coord{rng.Intn(f.W), rng.Intn(f.H)}
		}
	}

	if err := p.anneal(ctx, rng, opt.Moves, peNodes, rfNodes, memNodes, ioNodes, regNodes); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// nets enumerates (producer, consumer) pairs.
func (p *Placement) nets() [][2]int {
	var ns [][2]int
	for i := range p.Mapped.Nodes {
		for _, pr := range p.Mapped.Nodes[i].Producers() {
			ns = append(ns, [2]int{pr, i})
		}
	}
	return ns
}

func (p *Placement) wirelength() int {
	total := 0
	for _, n := range p.nets() {
		total += manhattan(p.Loc[n[0]], p.Loc[n[1]])
	}
	return total
}

// anneal refines the placement with class-preserving swap/move proposals.
// It polls ctx periodically (every 4096 moves) so a long anneal cannot
// outlive a cancelled evaluation; the deterministic proposal sequence is
// unaffected when ctx stays live.
func (p *Placement) anneal(ctx context.Context, rng *rand.Rand, moves int, peNodes, rfNodes, memNodes, ioNodes, regNodes []int) error {
	if moves <= 0 {
		moves = 200 * len(p.Mapped.Nodes)
		if moves > 400_000 {
			moves = 400_000
		}
	}
	// Incremental cost: net list per node.
	netsOf := make([][]int, len(p.Mapped.Nodes))
	allNets := p.nets()
	for ni, n := range allNets {
		netsOf[n[0]] = append(netsOf[n[0]], ni)
		netsOf[n[1]] = append(netsOf[n[1]], ni)
	}
	netLen := func(ni int) int {
		return manhattan(p.Loc[allNets[ni][0]], p.Loc[allNets[ni][1]])
	}
	costAround := func(nodes ...int) int {
		seen := map[int]bool{}
		c := 0
		for _, nd := range nodes {
			for _, ni := range netsOf[nd] {
				if !seen[ni] {
					seen[ni] = true
					c += netLen(ni)
				}
			}
		}
		return c
	}

	// Occupancy maps per resource class for swap proposals.
	classes := [][]int{peNodes, rfNodes, memNodes, ioNodes, regNodes}
	var movable []int
	for _, cl := range classes {
		movable = append(movable, cl...)
	}
	if len(movable) < 2 {
		return nil
	}
	classOf := map[int]int{}
	for ci, cl := range classes {
		for _, nd := range cl {
			classOf[nd] = ci
		}
	}
	// Free slots per class for move proposals.
	freeSlots := p.freeSlotsByClass()

	t := float64(p.Fabric.W + p.Fabric.H)
	cool := math.Pow(0.01/t, 1/float64(moves))
	for step := 0; step < moves; step++ {
		if step&4095 == 0 {
			if err := fault.Canceled(ctx); err != nil {
				return err
			}
		}
		a := movable[rng.Intn(len(movable))]
		ca := classOf[a]
		// Either swap with a same-class node or move to a free slot.
		if len(freeSlots[ca]) > 0 && rng.Intn(2) == 0 {
			si := rng.Intn(len(freeSlots[ca]))
			target := freeSlots[ca][si]
			before := costAround(a)
			old := p.Loc[a]
			p.Loc[a] = target
			after := costAround(a)
			if accepted(before, after, t, rng) {
				freeSlots[ca][si] = old
			} else {
				p.Loc[a] = old
			}
		} else {
			b := sameClassPeer(rng, classes[ca], a)
			if b < 0 {
				continue
			}
			before := costAround(a, b)
			p.Loc[a], p.Loc[b] = p.Loc[b], p.Loc[a]
			after := costAround(a, b)
			if !accepted(before, after, t, rng) {
				p.Loc[a], p.Loc[b] = p.Loc[b], p.Loc[a]
			}
		}
		t *= cool
	}
	return nil
}

func accepted(before, after int, t float64, rng *rand.Rand) bool {
	if after <= before {
		return true
	}
	return rng.Float64() < math.Exp(float64(before-after)/t)
}

func sameClassPeer(rng *rand.Rand, class []int, a int) int {
	if len(class) < 2 {
		return -1
	}
	for tries := 0; tries < 8; tries++ {
		b := class[rng.Intn(len(class))]
		if b != a {
			return b
		}
	}
	return -1
}

// freeSlotsByClass computes unoccupied slots per resource class
// (PE, RF, Mem, IO, Reg).
func (p *Placement) freeSlotsByClass() [][]Coord {
	occupied := map[Coord]map[int]bool{} // coord -> class set
	classAt := func(i int) int {
		switch p.Mapped.Nodes[i].Kind {
		case rewrite.KindPE:
			return 0
		case rewrite.KindRegFile:
			return 1
		case rewrite.KindMem, rewrite.KindRom:
			return 2
		case rewrite.KindInput, rewrite.KindInputB, rewrite.KindOutput:
			return 3
		default:
			return 4
		}
	}
	for i := range p.Mapped.Nodes {
		c := p.Loc[i]
		if occupied[c] == nil {
			occupied[c] = map[int]bool{}
		}
		occupied[c][classAt(i)] = true
	}
	free := make([][]Coord, 5)
	for _, c := range p.Fabric.PETiles() {
		if !occupied[c][0] {
			free[0] = append(free[0], c)
		}
		if !occupied[c][1] {
			free[1] = append(free[1], c)
		}
		free[4] = append(free[4], c)
	}
	for _, c := range p.Fabric.MemTiles() {
		if !occupied[c][2] {
			free[2] = append(free[2], c)
		}
		free[4] = append(free[4], c)
	}
	for _, c := range p.Fabric.IOSites() {
		if !occupied[c][3] {
			free[3] = append(free[3], c)
		}
	}
	return free
}

// Validate checks resource legality: kinds on compatible tiles and no
// double occupancy within a resource class.
func (p *Placement) Validate() error {
	peAt := map[Coord]int{}
	rfAt := map[Coord]int{}
	memAt := map[Coord]int{}
	ioAt := map[Coord]int{}
	for i := range p.Mapped.Nodes {
		c := p.Loc[i]
		kind := p.Mapped.Nodes[i].Kind
		switch kind {
		case rewrite.KindPE, rewrite.KindRegFile:
			if p.Fabric.KindAt(c) != TilePE {
				return fmt.Errorf("cgra: node %d (%s) on %s tile %s", i, kind, p.Fabric.KindAt(c), c)
			}
			reg := peAt
			if kind == rewrite.KindRegFile {
				reg = rfAt
			}
			if prev, ok := reg[c]; ok {
				return fmt.Errorf("cgra: nodes %d and %d share tile %s", prev, i, c)
			}
			reg[c] = i
		case rewrite.KindMem, rewrite.KindRom:
			if p.Fabric.KindAt(c) != TileMem {
				return fmt.Errorf("cgra: mem node %d on %s tile %s", i, p.Fabric.KindAt(c), c)
			}
			if prev, ok := memAt[c]; ok {
				return fmt.Errorf("cgra: mems %d and %d share tile %s", prev, i, c)
			}
			memAt[c] = i
		case rewrite.KindInput, rewrite.KindInputB, rewrite.KindOutput:
			if p.Fabric.KindAt(c) != TileIO {
				return fmt.Errorf("cgra: IO node %d on %s tile %s", i, p.Fabric.KindAt(c), c)
			}
			if prev, ok := ioAt[c]; ok {
				return fmt.Errorf("cgra: IOs %d and %d share site %s", prev, i, c)
			}
			ioAt[c] = i
		case rewrite.KindReg:
			if !p.Fabric.InGrid(c) {
				return fmt.Errorf("cgra: reg node %d off-grid at %s", i, c)
			}
		}
	}
	return nil
}
