package cgra

import (
	"context"
	"testing"
)

// TestAnnealingImprovesWirelength: the simulated-annealing placer must
// beat (or at least match) the greedy seed it starts from on a real
// design.
func TestAnnealingImprovesWirelength(t *testing.T) {
	_, m := smallMapped(t)
	fab := Default()
	seeded, err := Place(context.Background(), m, fab, PlaceOptions{Seed: 5, Moves: 1}) // effectively no annealing
	if err != nil {
		t.Fatal(err)
	}
	annealed, err := Place(context.Background(), m, fab, PlaceOptions{Seed: 5, Moves: 100000})
	if err != nil {
		t.Fatal(err)
	}
	w0, w1 := seeded.wirelength(), annealed.wirelength()
	if w1 > w0 {
		t.Errorf("annealing worsened wirelength: %d -> %d", w0, w1)
	}
	t.Logf("wirelength: seed %d -> annealed %d", w0, w1)
}

// TestPlacementDeterministicPerSeed: identical seeds must reproduce the
// placement exactly (the whole flow is reproducible).
func TestPlacementDeterministicPerSeed(t *testing.T) {
	_, m := smallMapped(t)
	fab := Default()
	p1, err := Place(context.Background(), m, fab, PlaceOptions{Seed: 9, Moves: 20000})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Place(context.Background(), m, fab, PlaceOptions{Seed: 9, Moves: 20000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Loc {
		if p1.Loc[i] != p2.Loc[i] {
			t.Fatalf("node %d placed at %s vs %s", i, p1.Loc[i], p2.Loc[i])
		}
	}
}

// TestAnnealedRoutesShorter: better placement should produce fewer total
// routed hops on a congested fabric.
func TestAnnealedRoutesShorter(t *testing.T) {
	_, m := smallMapped(t)
	fab := Default()
	bad, err := Place(context.Background(), m, fab, PlaceOptions{Seed: 3, Moves: 1})
	if err != nil {
		t.Fatal(err)
	}
	good, err := Place(context.Background(), m, fab, PlaceOptions{Seed: 3, Moves: 100000})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RouteAll(context.Background(), bad, RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rg, err := RouteAll(context.Background(), good, RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rg.TotalHops() > rb.TotalHops() {
		t.Errorf("annealed placement routes longer: %d vs %d hops", rg.TotalHops(), rb.TotalHops())
	}
	t.Logf("hops: seed-only %d -> annealed %d", rb.TotalHops(), rg.TotalHops())
}
