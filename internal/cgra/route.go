package cgra

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rewrite"
)

// Net is one point-to-point connection to route: the value produced by
// mapped node Src consumed by mapped node Dst. Bit marks 1-bit nets
// (routed on the narrow control tracks). Nets with the same Src share
// tracks wherever their paths coincide — one value on a track serves any
// number of sinks.
type Net struct {
	Src, Dst int
	Bit      bool
}

// Route is the tile path of a routed net, from the source tile to the
// destination tile inclusive.
type Route struct {
	Net  Net
	Path []Coord
}

// Hops returns the number of tile-to-tile hops.
func (r *Route) Hops() int { return len(r.Path) - 1 }

// Routing is the complete routing result.
type Routing struct {
	Placement *Placement
	Routes    []Route
	// Use16 and Use1 record, per directed tile edge, the number of
	// distinct source signals occupying tracks of each width.
	Use16, Use1 map[[2]Coord]int
	Iterations  int
}

// RouteOptions tunes the negotiated-congestion router.
type RouteOptions struct {
	// MaxIterations bounds rip-up-and-reroute rounds; default 24.
	MaxIterations int
	// FullReroute disables incremental rip-up: every congestion round
	// re-routes every net, like the original PathFinder loop. The
	// incremental router is the default; this mode exists as the
	// reference implementation for equivalence tests and benchmarks.
	FullReroute bool
}

// RouteAll routes every net of the placement using negotiated congestion
// (PathFinder-style): each round routes nets with edge costs that grow
// with present and historical overuse; routing converges when no track
// is oversubscribed. Sinks of one source are routed consecutively and
// reuse the source's existing tracks at near-zero cost, forming shared
// fanout trees.
//
// After the first full round, only the nets whose source's fanout tree
// crosses an over-capacity edge are ripped up and re-routed (in the same
// deterministic net order); everything else keeps its path and its track
// claims. Rip-up happens at source granularity because claims are
// per-(edge, source): removing one sink's path in isolation could strand
// or double-count the shared tree segments.
//
// Failure to converge within MaxIterations (and an unroutable net) is
// reported as fault.ErrNonConvergence, so callers can distinguish "more
// iterations might help" from hard errors. Cancellation of ctx aborts
// between nets with fault.ErrCanceled.
func RouteAll(ctx context.Context, p *Placement, opt RouteOptions) (*Routing, error) {
	if opt.MaxIterations <= 0 {
		opt.MaxIterations = 24
	}
	nets := collectNets(p.Mapped)
	r := newRouter(p)
	routes := make([]Route, len(nets))
	ripped := make([]bool, len(p.Mapped.Nodes)) // by source node, this round
	rippedNets, rippedSources := 0, 0
	for iter := 1; iter <= opt.MaxIterations; iter++ {
		if err := fault.Canceled(ctx); err != nil {
			return nil, err
		}
		full := iter == 1 || opt.FullReroute
		if full {
			r.resetUse()
		}
		lastSrc := -1
		for ni := range nets {
			net := nets[ni]
			if !full && !ripped[net.Src] {
				continue
			}
			if ni&255 == 0 {
				if err := fault.Canceled(ctx); err != nil {
					return nil, err
				}
			}
			if net.Src != lastSrc {
				lastSrc = net.Src
				r.beginGroup()
			}
			path, err := r.findPath(net)
			if err != nil {
				return nil, fmt.Errorf("cgra: net %d->%d: %w", net.Src, net.Dst, err)
			}
			r.claim(net, path)
			routes[ni] = Route{Net: net, Path: path}
		}
		if r.overflowScan() == 0 {
			res := &Routing{
				Placement:  p,
				Routes:     routes,
				Use16:      r.useMap(r.use16),
				Use1:       r.useMap(r.use1),
				Iterations: iter,
			}
			obs.Observe(ctx, "route.iterations", int64(iter))
			obs.Add(ctx, "route.nets", int64(len(nets)))
			if rippedNets > 0 {
				obs.Add(ctx, "route.ripup.nets", int64(rippedNets))
				obs.Add(ctx, "route.ripup.sources", int64(rippedSources))
			}
			return res, nil
		}
		if !opt.FullReroute {
			// Rip up every source whose tree touches an over edge; their
			// nets re-route next round against the updated costs.
			for i := range ripped {
				ripped[i] = false
			}
			for ni := range routes {
				rt := &routes[ni]
				if !ripped[rt.Net.Src] && r.crossesOverflow(rt.Net, rt.Path) {
					ripped[rt.Net.Src] = true
				}
			}
			lastSrc = -1
			for ni := range nets {
				if !ripped[nets[ni].Src] {
					continue
				}
				rippedNets++
				if nets[ni].Src != lastSrc {
					lastSrc = nets[ni].Src
					rippedSources++
					r.beginGroup()
				}
				r.unclaim(nets[ni], routes[ni].Path)
			}
		}
	}
	return nil, fault.NonConvergencef("cgra: routing did not converge in %d iterations", opt.MaxIterations)
}

// sortedKeys returns a position-indexed map's keys in ascending order.
func sortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// collectNets derives the net list from the mapped graph, ordered by
// source so fanout trees route consecutively.
func collectNets(m *rewrite.Mapped) []Net {
	var nets []Net
	for i := range m.Nodes {
		n := &m.Nodes[i]
		switch n.Kind {
		case rewrite.KindPE:
			// Iterate input ports in sorted position order: the net
			// list's order steers negotiated-congestion routing, so map
			// iteration here would make routing vary run to run.
			for _, pos := range sortedKeys(n.DataIn) {
				nets = append(nets, Net{Src: n.DataIn[pos], Dst: i})
			}
			for _, pos := range sortedKeys(n.BitIn) {
				nets = append(nets, Net{Src: n.BitIn[pos], Dst: i, Bit: true})
			}
		default:
			if n.Arg >= 0 {
				nets = append(nets, Net{Src: n.Arg, Dst: i})
			}
		}
	}
	sort.Slice(nets, func(i, j int) bool {
		if nets[i].Src != nets[j].Src {
			return nets[i].Src < nets[j].Src
		}
		if nets[i].Dst != nets[j].Dst {
			return nets[i].Dst < nets[j].Dst
		}
		return !nets[i].Bit && nets[j].Bit
	})
	return nets
}

// router is the dense, preallocated working state of one RouteAll call.
// Every map the old router kept per iteration — usage, history, source
// occupancy, Dijkstra distances — is a flat slice indexed by the padded
// grid's site/edge index (fabric.go), and "clearing" per-net or
// per-source state is an epoch-counter bump instead of a reallocation.
type router struct {
	f   *Fabric
	loc []Coord

	coords []Coord // site index -> coordinate
	nbr    []int32 // site*4+dir -> neighbor site, -1 if invalid
	ring   []bool  // site index -> on the I/O ring

	use16, use1 []int32   // per edge: distinct claiming sources
	hist        []float64 // per edge: accumulated overuse history (shared by both widths)

	// Per-source-group edge stamps: claim dedups (edge, source) pairs by
	// stamping the edge with the group epoch, valid because nets are
	// sorted by source so one source's nets route consecutively.
	mark16, mark1       []int32
	srcEpoch            int32
	claimed16, claimed1 bool // current group claimed any edge of that width

	over16, over1 []bool // per edge: over capacity in the last scan

	// A* state, epoch-stamped so successive nets share the slices.
	dist    []float64
	prev    []int32
	gen     []int32
	curGen  int32
	heap    routeHeap
	pathBuf []int32
}

func newRouter(p *Placement) *router {
	f := p.Fabric
	sites := f.numSites()
	r := &router{
		f:      f,
		loc:    p.Loc,
		coords: make([]Coord, sites),
		nbr:    make([]int32, sites*4),
		ring:   make([]bool, sites),
		use16:  make([]int32, sites*4),
		use1:   make([]int32, sites*4),
		hist:   make([]float64, sites*4),
		mark16: make([]int32, sites*4),
		mark1:  make([]int32, sites*4),
		over16: make([]bool, sites*4),
		over1:  make([]bool, sites*4),
		dist:   make([]float64, sites),
		prev:   make([]int32, sites),
		gen:    make([]int32, sites),
		heap:   make(routeHeap, 0, 256),
	}
	for y := -1; y <= f.H; y++ {
		for x := -1; x <= f.W; x++ {
			c := Coord{x, y}
			i := f.siteIndex(c)
			r.coords[i] = c
			r.ring[i] = f.onRing(c)
			for d, dc := range edgeDirs {
				n := Coord{x + dc.X, y + dc.Y}
				e := i*4 + int32(d)
				if f.ValidCoord(c) && f.ValidCoord(n) {
					r.nbr[e] = f.siteIndex(n)
				} else {
					r.nbr[e] = -1
				}
			}
		}
	}
	return r
}

func (r *router) resetUse() {
	for i := range r.use16 {
		r.use16[i] = 0
	}
	for i := range r.use1 {
		r.use1[i] = 0
	}
}

// beginGroup opens a new source group: subsequent claims stamp edges
// with a fresh epoch, and the reuse discount applies only to edges
// claimed under it.
func (r *router) beginGroup() {
	r.srcEpoch++
	r.claimed16, r.claimed1 = false, false
}

// edge returns the dense index of the directed edge a->b (adjacent).
func (r *router) edge(a, b Coord) int32 {
	i := r.f.siteIndex(a)
	var d int32
	switch {
	case b.X == a.X+1:
		d = 0
	case b.X == a.X-1:
		d = 1
	case b.Y == a.Y+1:
		d = 2
	default:
		d = 3
	}
	return i*4 + d
}

// claim records a routed path's track usage for the current source
// group, counting each (edge, source) pair once — the epoch-stamp fold
// of the old per-edge source-set maps.
func (r *router) claim(net Net, path []Coord) {
	use, mark := r.use16, r.mark16
	if net.Bit {
		use, mark = r.use1, r.mark1
	}
	claimedAny := false
	for i := 0; i+1 < len(path); i++ {
		e := r.edge(path[i], path[i+1])
		if mark[e] != r.srcEpoch {
			mark[e] = r.srcEpoch
			use[e]++
			claimedAny = true
		}
	}
	if claimedAny {
		if net.Bit {
			r.claimed1 = true
		} else {
			r.claimed16 = true
		}
	}
}

// unclaim withdraws a ripped source's track usage. Callers bracket each
// source's nets with beginGroup so the dedup mirrors claim exactly.
func (r *router) unclaim(net Net, path []Coord) {
	use, mark := r.use16, r.mark16
	if net.Bit {
		use, mark = r.use1, r.mark1
	}
	for i := 0; i+1 < len(path); i++ {
		e := r.edge(path[i], path[i+1])
		if mark[e] != r.srcEpoch {
			mark[e] = r.srcEpoch
			use[e]--
		}
	}
}

// overflowScan updates congestion history on every over-capacity edge
// (1-bit overuse weighted 2x, as before, into the shared history plane),
// marks the over edges for rip-up selection, and returns their count.
func (r *router) overflowScan() int {
	over := 0
	cap16, cap1 := int32(r.f.Tracks16), int32(r.f.Tracks1)
	for e, u := range r.use16 {
		r.over16[e] = u > cap16
		if u > cap16 {
			over++
			r.hist[e] += float64(u - cap16)
		}
	}
	for e, u := range r.use1 {
		r.over1[e] = u > cap1
		if u > cap1 {
			over++
			r.hist[e] += float64(u-cap1) * 2
		}
	}
	return over
}

// crossesOverflow reports whether a routed path uses an edge that the
// last overflowScan found over capacity on the net's width plane.
func (r *router) crossesOverflow(net Net, path []Coord) bool {
	over := r.over16
	if net.Bit {
		over = r.over1
	}
	for i := 0; i+1 < len(path); i++ {
		if over[r.edge(path[i], path[i+1])] {
			return true
		}
	}
	return false
}

// useMap materializes a dense usage plane as the coordinate-keyed map
// exposed on Routing.
func (r *router) useMap(use []int32) map[[2]Coord]int {
	m := make(map[[2]Coord]int)
	for e, u := range use {
		if u > 0 {
			a := r.coords[e/4]
			d := edgeDirs[e%4]
			m[[2]Coord{a, {a.X + d.X, a.Y + d.Y}}] = int(u)
		}
	}
	return m
}

// routeItem is an A* frontier entry: f = g + heuristic orders the heap,
// g is the true cost so far for the stale-entry check.
type routeItem struct {
	f, g float64
	node int32
}

// routeHeap is a typed binary min-heap on f — a flat slice with inlined
// sift loops, no interface boxing, reused across nets via truncation.
type routeHeap []routeItem

func (h *routeHeap) push(it routeItem) {
	q := append(*h, it)
	*h = q
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].f <= q[i].f {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
}

func (h *routeHeap) pop() routeItem {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	*h = q
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		small := i
		if l < n && q[l].f < q[small].f {
			small = l
		}
		if rr < n && q[rr].f < q[small].f {
			small = rr
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	return top
}

// findPath finds the cheapest tile path for a net under the congestion
// cost model, strongly preferring edges its source already occupies
// (fanout sharing). A* with a Manhattan-distance heuristic: every
// remaining hop costs at least 1 — except hops on the source's own
// already-claimed tracks, which cost 0.05 — so the heuristic scales by
// 0.05 once the current group has claimed anything on this width plane
// and stays admissible (and consistent) in both regimes.
func (r *router) findPath(net Net) ([]Coord, error) {
	src := r.f.siteIndex(r.loc[net.Src])
	dst := r.f.siteIndex(r.loc[net.Dst])
	if src == dst {
		return []Coord{r.coords[src]}, nil
	}
	use, mark, capacity, reusable := r.use16, r.mark16, int32(r.f.Tracks16), r.claimed16
	if net.Bit {
		use, mark, capacity, reusable = r.use1, r.mark1, int32(r.f.Tracks1), r.claimed1
	}
	hscale := 1.0
	if reusable {
		hscale = 0.05
	}
	dc := r.coords[dst]
	r.curGen++
	gen := r.curGen
	r.dist[src] = 0
	r.gen[src] = gen
	r.prev[src] = -1
	r.heap = r.heap[:0]
	r.heap.push(routeItem{hscale * float64(manhattan(r.coords[src], dc)), 0, src})
	for len(r.heap) > 0 {
		it := r.heap.pop()
		if it.node == dst {
			return r.buildPath(src, dst), nil
		}
		if it.g > r.dist[it.node] {
			continue
		}
		base := it.node * 4
		for d := int32(0); d < 4; d++ {
			n := r.nbr[base+d]
			if n < 0 {
				continue
			}
			// I/O ring sites route only as endpoints.
			if r.ring[n] && n != dst {
				continue
			}
			e := base + d
			var step float64
			if mark[e] == r.srcEpoch {
				step = 0.05 // reuse our own signal's track
			} else {
				step = 1
				if u := use[e]; u >= capacity {
					step += 3 * float64(u-capacity+1)
				}
				step += r.hist[e]
			}
			g := it.g + step
			if r.gen[n] != gen || g < r.dist[n] {
				r.dist[n] = g
				r.gen[n] = gen
				r.prev[n] = it.node
				r.heap.push(routeItem{g + hscale*float64(manhattan(r.coords[n], dc)), g, n})
			}
		}
	}
	return nil, fault.NonConvergencef("no path %s -> %s", r.coords[src], r.coords[dst])
}

// buildPath walks prev from dst back to src into a reused scratch
// buffer, then emits one exact-size coordinate slice (the only per-net
// allocation on the routing hot path).
func (r *router) buildPath(src, dst int32) []Coord {
	r.pathBuf = r.pathBuf[:0]
	for n := dst; ; n = r.prev[n] {
		r.pathBuf = append(r.pathBuf, n)
		if n == src {
			break
		}
	}
	path := make([]Coord, len(r.pathBuf))
	for i, n := range r.pathBuf {
		path[len(path)-1-i] = r.coords[n]
	}
	return path
}

// RoutingOnlyTiles counts grid tiles traversed by routes whose cores are
// unused (Table 3's "routing tiles" column).
func (r *Routing) RoutingOnlyTiles() int {
	usedCore := map[Coord]bool{}
	for i := range r.Placement.Mapped.Nodes {
		switch r.Placement.Mapped.Nodes[i].Kind {
		case rewrite.KindPE, rewrite.KindRegFile, rewrite.KindMem, rewrite.KindRom:
			usedCore[r.Placement.Loc[i]] = true
		}
	}
	traversed := map[Coord]bool{}
	for _, rt := range r.Routes {
		for _, c := range rt.Path {
			if r.Placement.Fabric.InGrid(c) {
				traversed[c] = true
			}
		}
	}
	// Tiles hosting interconnect registers also count as routing tiles.
	for i := range r.Placement.Mapped.Nodes {
		if r.Placement.Mapped.Nodes[i].Kind == rewrite.KindReg {
			traversed[r.Placement.Loc[i]] = true
		}
	}
	n := 0
	for c := range traversed {
		if !usedCore[c] {
			n++
		}
	}
	return n
}

// TotalHops sums distinct (edge, source) track segments — the wire/SB
// energy measure (shared fanout hops count once).
func (r *Routing) TotalHops() int {
	h := 0
	for _, u := range r.Use16 {
		h += u
	}
	for _, u := range r.Use1 {
		h += u
	}
	return h
}

// MaxRouteHops returns the longest single-net hop count (sets the
// interconnect's contribution to the critical path).
func (r *Routing) MaxRouteHops() int {
	max := 0
	for _, rt := range r.Routes {
		if rt.Hops() > max {
			max = rt.Hops()
		}
	}
	return max
}

// UsedSBTiles counts grid tiles whose switch box carries at least one
// route (for SB energy/area roll-ups).
func (r *Routing) UsedSBTiles() int {
	tiles := map[Coord]bool{}
	for _, rt := range r.Routes {
		for _, c := range rt.Path {
			if r.Placement.Fabric.InGrid(c) {
				tiles[c] = true
			}
		}
	}
	return len(tiles)
}
