package cgra

import (
	"container/heap"
	"context"
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rewrite"
)

// Net is one point-to-point connection to route: the value produced by
// mapped node Src consumed by mapped node Dst. Bit marks 1-bit nets
// (routed on the narrow control tracks). Nets with the same Src share
// tracks wherever their paths coincide — one value on a track serves any
// number of sinks.
type Net struct {
	Src, Dst int
	Bit      bool
}

// Route is the tile path of a routed net, from the source tile to the
// destination tile inclusive.
type Route struct {
	Net  Net
	Path []Coord
}

// Hops returns the number of tile-to-tile hops.
func (r *Route) Hops() int { return len(r.Path) - 1 }

// Routing is the complete routing result.
type Routing struct {
	Placement *Placement
	Routes    []Route
	// Use16 and Use1 record, per directed tile edge, the number of
	// distinct source signals occupying tracks of each width.
	Use16, Use1 map[[2]Coord]int
	// srcs16/srcs1 record which sources occupy each edge.
	srcs16, srcs1 map[[2]Coord]map[int]bool
	Iterations    int
}

// RouteOptions tunes the negotiated-congestion router.
type RouteOptions struct {
	// MaxIterations bounds rip-up-and-reroute rounds; default 24.
	MaxIterations int
}

// RouteAll routes every net of the placement using negotiated congestion
// (PathFinder-style): each round routes all nets with edge costs that
// grow with present and historical overuse; routing converges when no
// track is oversubscribed. Sinks of one source are routed consecutively
// and reuse the source's existing tracks at near-zero cost, forming
// shared fanout trees.
//
// Failure to converge within MaxIterations (and an unroutable net) is
// reported as fault.ErrNonConvergence, so callers can distinguish "more
// iterations might help" from hard errors. Cancellation of ctx aborts
// between nets with fault.ErrCanceled.
func RouteAll(ctx context.Context, p *Placement, opt RouteOptions) (*Routing, error) {
	if opt.MaxIterations <= 0 {
		opt.MaxIterations = 24
	}
	nets := collectNets(p.Mapped)
	history := map[[2]Coord]float64{}
	var r *Routing
	for iter := 1; iter <= opt.MaxIterations; iter++ {
		if err := fault.Canceled(ctx); err != nil {
			return nil, err
		}
		r = &Routing{
			Placement:  p,
			Use16:      map[[2]Coord]int{},
			Use1:       map[[2]Coord]int{},
			srcs16:     map[[2]Coord]map[int]bool{},
			srcs1:      map[[2]Coord]map[int]bool{},
			Iterations: iter,
		}
		for ni, net := range nets {
			if ni&255 == 0 {
				if err := fault.Canceled(ctx); err != nil {
					return nil, err
				}
			}
			path, err := r.shortestPath(net, history)
			if err != nil {
				return nil, fmt.Errorf("cgra: net %d->%d: %w", net.Src, net.Dst, err)
			}
			r.claim(net, path)
			r.Routes = append(r.Routes, Route{Net: net, Path: path})
		}
		over := 0
		for e, u := range r.Use16 {
			if u > p.Fabric.Tracks16 {
				over++
				history[e] += float64(u - p.Fabric.Tracks16)
			}
		}
		for e, u := range r.Use1 {
			if u > p.Fabric.Tracks1 {
				over++
				history[e] += float64(u-p.Fabric.Tracks1) * 2
			}
		}
		if over == 0 {
			obs.Observe(ctx, "route.iterations", int64(iter))
			obs.Add(ctx, "route.nets", int64(len(nets)))
			return r, nil
		}
	}
	return nil, fault.NonConvergencef("cgra: routing did not converge in %d iterations", opt.MaxIterations)
}

// claim records a routed path's track usage.
func (r *Routing) claim(net Net, path []Coord) {
	srcs, use := r.srcs16, r.Use16
	if net.Bit {
		srcs, use = r.srcs1, r.Use1
	}
	for i := 0; i+1 < len(path); i++ {
		e := [2]Coord{path[i], path[i+1]}
		if srcs[e] == nil {
			srcs[e] = map[int]bool{}
		}
		if !srcs[e][net.Src] {
			srcs[e][net.Src] = true
			use[e]++
		}
	}
}

// sortedKeys returns a position-indexed map's keys in ascending order.
func sortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// collectNets derives the net list from the mapped graph, ordered by
// source so fanout trees route consecutively.
func collectNets(m *rewrite.Mapped) []Net {
	var nets []Net
	for i := range m.Nodes {
		n := &m.Nodes[i]
		switch n.Kind {
		case rewrite.KindPE:
			// Iterate input ports in sorted position order: the net
			// list's order steers negotiated-congestion routing, so map
			// iteration here would make routing vary run to run.
			for _, pos := range sortedKeys(n.DataIn) {
				nets = append(nets, Net{Src: n.DataIn[pos], Dst: i})
			}
			for _, pos := range sortedKeys(n.BitIn) {
				nets = append(nets, Net{Src: n.BitIn[pos], Dst: i, Bit: true})
			}
		default:
			if n.Arg >= 0 {
				nets = append(nets, Net{Src: n.Arg, Dst: i})
			}
		}
	}
	sort.Slice(nets, func(i, j int) bool {
		if nets[i].Src != nets[j].Src {
			return nets[i].Src < nets[j].Src
		}
		if nets[i].Dst != nets[j].Dst {
			return nets[i].Dst < nets[j].Dst
		}
		return !nets[i].Bit && nets[j].Bit
	})
	return nets
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	c    Coord
	cost float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].cost < q[j].cost }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// shortestPath finds the cheapest tile path for a net under the
// congestion cost model, strongly preferring edges its source already
// occupies (fanout sharing).
func (r *Routing) shortestPath(net Net, history map[[2]Coord]float64) ([]Coord, error) {
	src := r.Placement.Loc[net.Src]
	dst := r.Placement.Loc[net.Dst]
	if src == dst {
		return []Coord{src}, nil
	}
	f := r.Placement.Fabric
	srcs, use, capacity := r.srcs16, r.Use16, f.Tracks16
	if net.Bit {
		srcs, use, capacity = r.srcs1, r.Use1, f.Tracks1
	}
	dist := map[Coord]float64{src: 0}
	prev := map[Coord]Coord{}
	q := &pq{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.c == dst {
			var path []Coord
			for c := dst; ; {
				path = append([]Coord{c}, path...)
				if c == src {
					break
				}
				c = prev[c]
			}
			return path, nil
		}
		if it.cost > dist[it.c] {
			continue
		}
		for _, n := range f.Neighbors(it.c) {
			// I/O ring sites route only as endpoints.
			if f.onRing(n) && n != dst {
				continue
			}
			e := [2]Coord{it.c, n}
			var step float64
			if srcs[e] != nil && srcs[e][net.Src] {
				step = 0.05 // reuse our own signal's track
			} else {
				step = 1
				if u := use[e]; u >= capacity {
					step += 3 * float64(u-capacity+1)
				}
				step += history[e]
			}
			cost := it.cost + step
			if d, ok := dist[n]; !ok || cost < d {
				dist[n] = cost
				prev[n] = it.c
				heap.Push(q, pqItem{n, cost})
			}
		}
	}
	return nil, fault.NonConvergencef("no path %s -> %s", src, dst)
}

// RoutingOnlyTiles counts grid tiles traversed by routes whose cores are
// unused (Table 3's "routing tiles" column).
func (r *Routing) RoutingOnlyTiles() int {
	usedCore := map[Coord]bool{}
	for i := range r.Placement.Mapped.Nodes {
		switch r.Placement.Mapped.Nodes[i].Kind {
		case rewrite.KindPE, rewrite.KindRegFile, rewrite.KindMem, rewrite.KindRom:
			usedCore[r.Placement.Loc[i]] = true
		}
	}
	traversed := map[Coord]bool{}
	for _, rt := range r.Routes {
		for _, c := range rt.Path {
			if r.Placement.Fabric.InGrid(c) {
				traversed[c] = true
			}
		}
	}
	// Tiles hosting interconnect registers also count as routing tiles.
	for i := range r.Placement.Mapped.Nodes {
		if r.Placement.Mapped.Nodes[i].Kind == rewrite.KindReg {
			traversed[r.Placement.Loc[i]] = true
		}
	}
	n := 0
	for c := range traversed {
		if !usedCore[c] {
			n++
		}
	}
	return n
}

// TotalHops sums distinct (edge, source) track segments — the wire/SB
// energy measure (shared fanout hops count once).
func (r *Routing) TotalHops() int {
	h := 0
	for _, u := range r.Use16 {
		h += u
	}
	for _, u := range r.Use1 {
		h += u
	}
	return h
}

// MaxRouteHops returns the longest single-net hop count (sets the
// interconnect's contribution to the critical path).
func (r *Routing) MaxRouteHops() int {
	max := 0
	for _, rt := range r.Routes {
		if rt.Hops() > max {
			max = rt.Hops()
		}
	}
	return max
}

// UsedSBTiles counts grid tiles whose switch box carries at least one
// route (for SB energy/area roll-ups).
func (r *Routing) UsedSBTiles() int {
	tiles := map[Coord]bool{}
	for _, rt := range r.Routes {
		for _, c := range rt.Path {
			if r.Placement.Fabric.InGrid(c) {
				tiles[c] = true
			}
		}
	}
	return len(tiles)
}
