package cgra

import (
	"fmt"
	"sort"

	"repro/internal/merge"
	"repro/internal/rewrite"
)

// Word is one configuration word: a register address within the fabric's
// configuration space and its value.
type Word struct {
	Addr uint32
	Data uint32
}

// Bitstream is the static configuration of the fabric for one
// application: PE instruction/operand-select/constant registers, switch
// box track switches, and connection box input selects.
type Bitstream struct {
	Words []Word
	// TrackOf assigns each routed hop a track index (per net, per hop).
	TrackOf map[[3]int]int // (route idx, hop idx, 0) -> track
}

// Feature codes within a tile's configuration address space.
const (
	featPEOp    = 0x0
	featPEMux   = 0x1
	featPEConst = 0x2
	featSB      = 0x4
	featCB      = 0x5
	featMemMode = 0x6
	featIOMode  = 0x7
)

func tileAddr(c Coord, feature, index int) uint32 {
	// Ring sites use offset-by-one coordinates so -1 encodes as 0.
	return uint32(c.Y+1)<<20 | uint32(c.X+1)<<12 | uint32(feature)<<8 | uint32(index)
}

// GenerateBitstream encodes the routed design into configuration words.
// Track assignment is greedy per directed edge in route order; capacity
// was already guaranteed by the router.
func GenerateBitstream(r *Routing) (*Bitstream, error) {
	bs := &Bitstream{TrackOf: map[[3]int]int{}}
	m := r.Placement.Mapped

	// --- PE, memory, and IO tile configuration.
	for i := range m.Nodes {
		n := &m.Nodes[i]
		c := r.Placement.Loc[i]
		switch n.Kind {
		case rewrite.KindPE:
			spec := n.Rule.Spec
			// Operation selects, in FU order.
			opWord := uint32(0)
			for fi, fu := range spec.FUs {
				if op, ok := n.Rule.Config.OpSel[fu]; ok {
					opWord |= uint32(opIndex(&spec.DP.Units[fu], op)) << (uint(fi%8) * 4)
				}
				if fi%8 == 7 || fi == len(spec.FUs)-1 {
					bs.Words = append(bs.Words, Word{tileAddr(c, featPEOp, fi/8), opWord})
					opWord = 0
				}
			}
			// Mux selects: every configured (unit, port).
			keys := make([][2]int, 0, len(n.Rule.Config.PortSel))
			for k := range n.Rule.Config.PortSel {
				keys = append(keys, k)
			}
			for k := range n.Rule.Config.OutSel {
				keys = append(keys, [2]int{k, -1})
			}
			sort.Slice(keys, func(a, b int) bool {
				if keys[a][0] != keys[b][0] {
					return keys[a][0] < keys[b][0]
				}
				return keys[a][1] < keys[b][1]
			})
			for mi, k := range keys {
				var src int
				if k[1] < 0 {
					src = n.Rule.Config.OutSel[k[0]]
				} else {
					src = n.Rule.Config.PortSel[k]
				}
				sel := sourceIndex(spec, k[0], maxInt(k[1], 0), src)
				if sel < 0 {
					return nil, fmt.Errorf("cgra: node %d: no wire %d -> (%d,%d)", i, src, k[0], k[1])
				}
				bs.Words = append(bs.Words, Word{tileAddr(c, featPEMux, mi), uint32(sel)})
			}
			// Constant registers and LUT tables.
			ci := 0
			cks := make([]int, 0, len(n.ConstVals)+len(n.LUTTables))
			for cu := range n.ConstVals {
				cks = append(cks, cu)
			}
			for fu := range n.LUTTables {
				cks = append(cks, fu)
			}
			sort.Ints(cks)
			for _, cu := range cks {
				v, ok := n.ConstVals[cu]
				if !ok {
					v = n.LUTTables[cu]
				}
				bs.Words = append(bs.Words, Word{tileAddr(c, featPEConst, ci), uint32(v)})
				ci++
			}
		case rewrite.KindMem, rewrite.KindRom:
			bs.Words = append(bs.Words, Word{tileAddr(c, featMemMode, 0), uint32(n.Kind)})
		case rewrite.KindRegFile:
			bs.Words = append(bs.Words, Word{tileAddr(c, featMemMode, 1), uint32(n.Depth)})
		case rewrite.KindInput, rewrite.KindInputB, rewrite.KindOutput:
			bs.Words = append(bs.Words, Word{tileAddr(c, featIOMode, 0), uint32(n.Kind)})
		}
	}

	// --- Switch box configuration: one track per (edge, source signal)
	// within each track-width plane; fanout sinks of the same source
	// reuse the source's track.
	type plane struct {
		trackBySrc map[[2]Coord]map[int]int
		nextTrack  map[[2]Coord]int
	}
	planes := [2]plane{
		{map[[2]Coord]map[int]int{}, map[[2]Coord]int{}},
		{map[[2]Coord]map[int]int{}, map[[2]Coord]int{}},
	}
	for ri, rt := range r.Routes {
		pl := &planes[0]
		capacity := r.Placement.Fabric.Tracks16
		if rt.Net.Bit {
			pl = &planes[1]
			capacity = r.Placement.Fabric.Tracks1
		}
		for hi := 0; hi+1 < len(rt.Path); hi++ {
			e := [2]Coord{rt.Path[hi], rt.Path[hi+1]}
			if pl.trackBySrc[e] == nil {
				pl.trackBySrc[e] = map[int]int{}
			}
			track, seen := pl.trackBySrc[e][rt.Net.Src]
			if !seen {
				track = pl.nextTrack[e]
				pl.nextTrack[e]++
				pl.trackBySrc[e][rt.Net.Src] = track
			}
			if track >= capacity {
				return nil, fmt.Errorf("cgra: edge %v over capacity at bitstream time", e)
			}
			bs.TrackOf[[3]int{ri, hi, 0}] = track
			if seen {
				continue // switch already configured for this signal
			}
			// One word per hop: direction + track, addressed at the hop's
			// source tile.
			dir := dirCode(rt.Path[hi], rt.Path[hi+1])
			bs.Words = append(bs.Words, Word{
				tileAddr(rt.Path[hi], featSB, track*4+dir),
				uint32(ri)<<8 | uint32(dir)<<4 | uint32(track),
			})
		}
		// Connection box select at the destination.
		if len(rt.Path) >= 2 {
			last := rt.Path[len(rt.Path)-1]
			dir := dirCode(rt.Path[len(rt.Path)-2], last)
			bs.Words = append(bs.Words, Word{
				tileAddr(last, featCB, ri%256),
				uint32(dir),
			})
		}
	}
	return bs, nil
}

// opIndex returns op's position within the unit's op list.
func opIndex(u *merge.Unit, op interface{ Name() string }) int {
	for i, o := range u.Ops {
		if o.Name() == op.Name() {
			return i
		}
	}
	return 0
}

// sourceIndex returns src's position among the candidate sources of
// (unit, port), or -1.
func sourceIndex(spec interface {
	PortSources(unit, port int) []int
}, unit, port, src int) int {
	for i, s := range spec.PortSources(unit, port) {
		if s == src {
			return i
		}
	}
	return -1
}

func dirCode(from, to Coord) int {
	switch {
	case to.X > from.X:
		return 0 // east
	case to.X < from.X:
		return 1 // west
	case to.Y > from.Y:
		return 2 // south
	default:
		return 3 // north
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Size returns the number of configuration words.
func (b *Bitstream) Size() int { return len(b.Words) }
