package pipeline

import (
	"sort"

	"repro/internal/rewrite"
)

// sortedPositions returns a position-indexed map's keys in ascending
// order, for deterministic traversal.
func sortedPositions(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// AppOptions tunes application pipelining.
type AppOptions struct {
	// PELatency is the pipeline depth of every PE tile (homogeneous
	// fabric), from PipelinePE.
	PELatency int
	// MemLatency is the memory-tile latency; default 1.
	MemLatency int
	// FIFOCutoff is the register-chain length above which a chain is
	// replaced by a register-file FIFO (paper Section 4.3: "register
	// chains greater than length 2"); default 2. Negative disables the
	// substitution entirely (ablation).
	FIFOCutoff int
}

func (o AppOptions) withDefaults() AppOptions {
	if o.MemLatency <= 0 {
		o.MemLatency = 1
	}
	if o.FIFOCutoff == 0 {
		o.FIFOCutoff = 2
	}
	return o
}

// BalanceReport summarizes what branch delay matching inserted.
type BalanceReport struct {
	RegsInserted  int // pipeline registers added (after FIFO substitution)
	FIFOsInserted int // register-file FIFOs substituted for long chains
	TotalLatency  int // input-to-output latency of the balanced design
}

// nodeLatency returns the cycle latency a mapped node contributes under
// the given options.
func nodeLatency(n *rewrite.MNode, opt AppOptions) int {
	switch n.Kind {
	case rewrite.KindPE:
		return opt.PELatency
	case rewrite.KindMem, rewrite.KindRom:
		return opt.MemLatency
	case rewrite.KindReg:
		return 1
	case rewrite.KindRegFile:
		return n.Depth
	default:
		return 0
	}
}

// BalanceApp performs branch delay matching on a mapped application
// graph (paper Section 4.3): traverse from inputs to outputs tracking
// data arrival times; wherever a node's operands arrive at different
// cycles, insert pipeline registers on the early paths. Register chains
// longer than FIFOCutoff become register-file FIFOs. The input graph is
// not modified; a balanced copy is returned.
func BalanceApp(m *rewrite.Mapped, opt AppOptions) (*rewrite.Mapped, BalanceReport) {
	opt = opt.withDefaults()
	out := &rewrite.Mapped{Name: m.Name + "+balanced", Spec: m.Spec}
	// Copy nodes; indices are preserved, padding nodes appended.
	for _, n := range m.Nodes {
		out.Nodes = append(out.Nodes, cloneMNode(n))
	}

	var report BalanceReport
	arrival := make([]int, len(m.Nodes))

	// delayed returns a node index presenting producer p's value delayed
	// to cycle 'want'.
	delayed := func(p int, want int) int {
		have := arrival[p]
		gap := want - have
		if gap <= 0 {
			return p
		}
		if opt.FIFOCutoff >= 0 && gap > opt.FIFOCutoff {
			out.Nodes = append(out.Nodes, rewrite.MNode{
				Kind: rewrite.KindRegFile, Arg: p, Depth: gap,
			})
			report.FIFOsInserted++
			return len(out.Nodes) - 1
		}
		cur := p
		for i := 0; i < gap; i++ {
			out.Nodes = append(out.Nodes, rewrite.MNode{Kind: rewrite.KindReg, Arg: cur})
			report.RegsInserted++
			cur = len(out.Nodes) - 1
		}
		return cur
	}

	for _, i := range m.TopoOrder() {
		n := &out.Nodes[i]
		prods := m.Nodes[i].Producers()
		if len(prods) == 0 {
			arrival[i] = nodeLatency(n, opt)
			continue
		}
		latest := 0
		for _, p := range prods {
			if arrival[p] > latest {
				latest = arrival[p]
			}
		}
		// Delay-match every operand to the latest arrival.
		switch n.Kind {
		case rewrite.KindPE:
			// Fixed port order: delayed() allocates register nodes, so
			// map-iteration order here would assign different register
			// indices to different ports run to run and make the whole
			// place-and-route pipeline nondeterministic downstream.
			for _, pos := range sortedPositions(n.DataIn) {
				n.DataIn[pos] = delayed(n.DataIn[pos], latest)
			}
			for _, pos := range sortedPositions(n.BitIn) {
				n.BitIn[pos] = delayed(n.BitIn[pos], latest)
			}
		default:
			if n.Arg >= 0 {
				n.Arg = delayed(n.Arg, latest)
			}
		}
		arrival[i] = latest + nodeLatency(n, opt)
		if arrival[i] > report.TotalLatency {
			report.TotalLatency = arrival[i]
		}
	}
	return out, report
}

// CheckBalanced verifies the branch-delay-matching invariant: every
// multi-operand node sees identical arrival times on all operands. It
// returns the first offending node index, or -1 when balanced.
func CheckBalanced(m *rewrite.Mapped, opt AppOptions) int {
	opt = opt.withDefaults()
	arrival := make([]int, len(m.Nodes))
	for _, i := range m.TopoOrder() {
		n := &m.Nodes[i]
		prods := n.Producers()
		if len(prods) > 1 {
			first := arrival[prods[0]]
			for _, p := range prods[1:] {
				if arrival[p] != first {
					return i
				}
			}
		}
		in := 0
		if len(prods) > 0 {
			in = arrival[prods[0]]
			for _, p := range prods {
				if arrival[p] > in {
					in = arrival[p]
				}
			}
		}
		arrival[i] = in + nodeLatency(n, opt)
	}
	return -1
}

func cloneMNode(n rewrite.MNode) rewrite.MNode {
	c := n
	if n.DataIn != nil {
		c.DataIn = make(map[int]int, len(n.DataIn))
		for k, v := range n.DataIn {
			c.DataIn[k] = v
		}
	}
	if n.BitIn != nil {
		c.BitIn = make(map[int]int, len(n.BitIn))
		for k, v := range n.BitIn {
			c.BitIn[k] = v
		}
	}
	if n.ConstVals != nil {
		c.ConstVals = make(map[int]uint16, len(n.ConstVals))
		for k, v := range n.ConstVals {
			c.ConstVals[k] = v
		}
	}
	if n.LUTTables != nil {
		c.LUTTables = make(map[int]uint16, len(n.LUTTables))
		for k, v := range n.LUTTables {
			c.LUTTables[k] = v
		}
	}
	return c
}
