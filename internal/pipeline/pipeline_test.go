package pipeline

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/ir"
	"repro/internal/merge"
	"repro/internal/pe"
	"repro/internal/rewrite"
	"repro/internal/tech"
)

func baselineSpec(t *testing.T) *pe.Spec {
	t.Helper()
	return pe.FromDatapath("base", merge.BaselinePE(ir.BaselineALUOps()))
}

// deepSpec builds a deliberately deep PE: a chain of 4 multiplies.
func deepSpec(t *testing.T) *pe.Spec {
	t.Helper()
	g := ir.NewGraph("deep")
	x := g.Input("x")
	acc := x
	for i := 0; i < 4; i++ {
		acc = g.OpNode(ir.OpMul, acc, g.Input(string(rune('a'+i))))
	}
	g.Output("o", acc)
	dp, err := merge.FromPattern(g, "deep")
	if err != nil {
		t.Fatal(err)
	}
	return pe.FromDatapath("deep", dp)
}

func TestRetimeZeroStagesIsCombinational(t *testing.T) {
	m := tech.Default()
	s := deepSpec(t)
	p := Retime(s, m, 0)
	if p.Stages != 0 || p.ExtraRegs != 0 {
		t.Fatalf("zero-stage retime added stages/regs: %+v", p)
	}
	// Period equals the 4-multiply chain.
	mulD := m.HWClassCost("mul").Delay
	if p.PeriodPS < 4*mulD*0.99 {
		t.Errorf("combinational period %.0f below 4 multiplies %.0f", p.PeriodPS, 4*mulD)
	}
}

func TestRetimeReducesPeriodMonotonically(t *testing.T) {
	m := tech.Default()
	s := deepSpec(t)
	prev := Retime(s, m, 0).PeriodPS
	for stages := 1; stages <= 3; stages++ {
		p := Retime(s, m, stages)
		if p.PeriodPS > prev*1.001 {
			t.Errorf("stages=%d period %.0f worse than previous %.0f", stages, p.PeriodPS, prev)
		}
		if p.Stages > stages {
			t.Errorf("retime used %d stages with budget %d", p.Stages, stages)
		}
		prev = p.PeriodPS
	}
}

func TestRetimeStagesRespectDataflow(t *testing.T) {
	m := tech.Default()
	s := deepSpec(t)
	p := Retime(s, m, 3)
	for _, w := range s.DP.Wires {
		if p.StageOf[w.From] > p.StageOf[w.To] {
			t.Fatalf("wire %d->%d goes backward in stages (%d -> %d)",
				w.From, w.To, p.StageOf[w.From], p.StageOf[w.To])
		}
	}
}

func TestPipelinePEMeetsTarget(t *testing.T) {
	m := tech.Default()
	s := deepSpec(t)
	p := PipelinePE(s, m, Options{})
	if p.PeriodPS > tech.ClockPeriodPS {
		t.Errorf("pipelined period %.0f exceeds target %.0f (stages=%d)",
			p.PeriodPS, tech.ClockPeriodPS, p.Stages)
	}
	if p.Stages == 0 {
		t.Error("deep PE should need at least one stage")
	}
}

func TestPipelinePEBaselineNoStages(t *testing.T) {
	// A single-level baseline PE fits in the clock; no stages needed.
	m := tech.Default()
	p := PipelinePE(baselineSpec(t), m, Options{})
	if p.Stages != 0 {
		t.Errorf("baseline PE pipelined to %d stages unnecessarily", p.Stages)
	}
}

func TestPipelinedAreaIncludesRegs(t *testing.T) {
	m := tech.Default()
	s := deepSpec(t)
	p0 := Retime(s, m, 0)
	p3 := Retime(s, m, 3)
	if p3.ExtraRegs == 0 {
		t.Fatal("3-stage retime inserted no registers")
	}
	if p3.Area(m) <= p0.Area(m) {
		t.Error("pipelined area not larger than combinational")
	}
}

// mapConv produces a mapped graph with unbalanced branches: a multiply
// path joining a direct path.
func mapConv(t *testing.T) (*ir.Graph, *rewrite.Mapped) {
	t.Helper()
	g := ir.NewGraph("unbal")
	a := g.Input("a")
	b := g.Input("b")
	m1 := g.OpNode(ir.OpMul, a, b)
	m2 := g.OpNode(ir.OpMul, m1, b)
	s := g.OpNode(ir.OpAdd, m2, a) // 'a' arrives 2 PE-latencies early
	g.Output("o", s)
	spec := baselineSpec(t)
	rs, err := rewrite.SynthesizeRuleSet(spec, nil, ir.BaselineALUOps())
	if err != nil {
		t.Fatal(err)
	}
	m, err := rewrite.MapApp(g, rs, "unbal")
	if err != nil {
		t.Fatal(err)
	}
	return g, m
}

func TestBalanceAppInsertsRegisters(t *testing.T) {
	_, m := mapConv(t)
	opt := AppOptions{PELatency: 1, FIFOCutoff: 10}
	if CheckBalanced(m, opt) < 0 {
		t.Fatal("graph unexpectedly balanced before matching")
	}
	bal, report := BalanceApp(m, opt)
	if report.RegsInserted == 0 {
		t.Fatal("no registers inserted")
	}
	if idx := CheckBalanced(bal, opt); idx >= 0 {
		t.Fatalf("still unbalanced at node %d", idx)
	}
	if err := bal.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBalanceAppFIFOSubstitution(t *testing.T) {
	_, m := mapConv(t)
	opt := AppOptions{PELatency: 3, FIFOCutoff: 2}
	bal, report := BalanceApp(m, opt)
	// The short path is 6 cycles behind (2 PEs x 3); gap > cutoff 2 so a
	// FIFO must replace the register chain.
	if report.FIFOsInserted == 0 {
		t.Fatal("no FIFO substituted for a 6-deep chain")
	}
	if idx := CheckBalanced(bal, opt); idx >= 0 {
		t.Fatalf("unbalanced at node %d", idx)
	}
}

func TestBalanceAppCutoffDisabled(t *testing.T) {
	_, m := mapConv(t)
	opt := AppOptions{PELatency: 3, FIFOCutoff: -1}
	bal, report := BalanceApp(m, opt)
	if report.FIFOsInserted != 0 {
		t.Fatal("FIFO inserted with substitution disabled")
	}
	if report.RegsInserted < 6 {
		t.Errorf("regs = %d, want >= 6", report.RegsInserted)
	}
	if idx := CheckBalanced(bal, opt); idx >= 0 {
		t.Fatalf("unbalanced at node %d", idx)
	}
}

func TestBalancePreservesSteadyStateSemantics(t *testing.T) {
	app, m := mapConv(t)
	bal, _ := BalanceApp(m, AppOptions{PELatency: 2})
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		inputs := map[string]uint16{
			"a": uint16(rng.Intn(1 << 16)),
			"b": uint16(rng.Intn(1 << 16)),
		}
		want, err := app.Eval(inputs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := bal.Eval(inputs)
		if err != nil {
			t.Fatal(err)
		}
		if got["o"] != want["o"] {
			t.Fatalf("balanced graph diverged: %d != %d", got["o"], want["o"])
		}
	}
}

func TestBalanceRealAppsAllVariants(t *testing.T) {
	spec := baselineSpec(t)
	rs, err := rewrite.SynthesizeRuleSet(spec, nil, ir.BaselineALUOps())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []*apps.App{apps.Harris(), apps.ResNet()} {
		m, err := rewrite.MapApp(a.Graph, rs, a.Name)
		if err != nil {
			t.Fatal(err)
		}
		for _, lat := range []int{0, 1, 2} {
			opt := AppOptions{PELatency: lat}
			bal, report := BalanceApp(m, opt)
			if idx := CheckBalanced(bal, opt); idx >= 0 {
				t.Errorf("%s lat=%d: unbalanced at %d", a.Name, lat, idx)
			}
			if lat == 0 && a.Name == "harris" && report.RegsInserted > 0 {
				// With zero PE latency only memory skew needs matching.
				t.Logf("harris lat=0 inserted %d regs (memory skew)", report.RegsInserted)
			}
		}
	}
}

func TestChainVsFIFOCutoffSweep(t *testing.T) {
	// DESIGN.md ablation 3: larger cutoffs shift FIFOs back to registers.
	_, m := mapConv(t)
	prevRegs := -1
	for _, cutoff := range []int{1, 2, 4, 8} {
		_, report := BalanceApp(m, AppOptions{PELatency: 3, FIFOCutoff: cutoff})
		if prevRegs >= 0 && report.RegsInserted < prevRegs {
			t.Errorf("cutoff %d: regs %d decreased vs smaller cutoff %d", cutoff, report.RegsInserted, prevRegs)
		}
		prevRegs = report.RegsInserted
	}
}
