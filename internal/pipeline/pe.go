// Package pipeline implements the paper's two automated pipelining
// passes: PE pipelining (Section 4.2 — static-timing-driven stage-count
// selection with register retiming after Calland et al.) and application
// pipelining (Section 4.3 — branch delay matching with register-file FIFO
// substitution for long register chains).
package pipeline

import (
	"math"
	"sort"

	"repro/internal/merge"
	"repro/internal/pe"
	"repro/internal/tech"
)

// PipelinedPE is a PE spec with its chosen pipeline depth and the
// retiming result.
type PipelinedPE struct {
	Spec *pe.Spec
	// Stages is the number of pipeline registers on the input-to-output
	// path (0 = combinational). A PE with S stages has latency S cycles.
	Stages int
	// PeriodPS is the achieved clock period after retiming.
	PeriodPS float64
	// StageOf assigns each datapath unit to a pipeline stage.
	StageOf []int
	// ExtraRegs is the number of 16-bit pipeline registers retiming
	// inserted (one per unit-output crossing a stage boundary).
	ExtraRegs int
}

// Options tunes PE pipelining.
type Options struct {
	// TargetPS is the desired clock period; default tech.ClockPeriodPS.
	TargetPS float64
	// MaxStages caps the pipeline depth; default 6.
	MaxStages int
	// MinGain is the minimum fractional period reduction an extra stage
	// must deliver to be worth it (paper: "determining when adding
	// another stage gives a significant benefit"); default 0.10.
	MinGain float64
}

func (o Options) withDefaults() Options {
	if o.TargetPS <= 0 {
		o.TargetPS = tech.ClockPeriodPS
	}
	if o.MaxStages <= 0 {
		o.MaxStages = 6
	}
	if o.MinGain <= 0 {
		o.MinGain = 0.10
	}
	return o
}

// PipelinePE chooses the pipeline depth for a PE with the paper's
// iterative policy: increase the stage count while the critical path
// model says the clock period still exceeds the target and the marginal
// stage still buys a significant reduction; retime registers to balance
// stage delays at each step.
func PipelinePE(spec *pe.Spec, m *tech.Model, opt Options) *PipelinedPE {
	opt = opt.withDefaults()
	best := Retime(spec, m, 0)
	plateau := 0
	for s := 1; s <= opt.MaxStages && best.PeriodPS > opt.TargetPS; s++ {
		next := Retime(spec, m, s)
		gain := (best.PeriodPS - next.PeriodPS) / best.PeriodPS
		if next.PeriodPS < best.PeriodPS {
			best = next
		}
		if gain < opt.MinGain {
			// One plateau stage is tolerated (an odd split may not help
			// until the next boundary); two in a row means the datapath
			// cannot be cut any finer.
			plateau++
			if plateau >= 2 {
				break
			}
			continue
		}
		plateau = 0
	}
	return best
}

// Retime assigns datapath units to stages+1 pipeline bins minimizing the
// maximum intra-stage path delay (the classic DAG retiming formulation:
// binary search on the period, greedy stage assignment as feasibility
// check).
func Retime(spec *pe.Spec, m *tech.Model, stages int) *PipelinedPE {
	order, preds := unitDAG(spec)
	delays := unitDelays(spec, m)

	assign := func(period float64) ([]int, float64, int) {
		stageOf := make([]int, len(spec.DP.Units))
		arrive := make([]float64, len(spec.DP.Units)) // intra-stage arrival
		worst := 0.0
		maxStage := 0
		for _, u := range order {
			st, ar := 0, 0.0
			for _, p := range preds[u] {
				ps, pa := stageOf[p], arrive[p]
				switch {
				case ps > st:
					st, ar = ps, pa
				case ps == st && pa > ar:
					ar = pa
				}
			}
			if ar+delays[u] > period && ar > 0 {
				st++
				ar = 0
			}
			stageOf[u] = st
			arrive[u] = ar + delays[u]
			if arrive[u] > worst {
				worst = arrive[u]
			}
			if st > maxStage {
				maxStage = st
			}
		}
		return stageOf, worst, maxStage
	}

	if stages == 0 {
		stageOf, worst, _ := assign(math.Inf(1))
		return &PipelinedPE{Spec: spec, Stages: 0, PeriodPS: worst, StageOf: stageOf}
	}

	// Binary search the smallest period achievable within the stage
	// budget.
	lo, hi := 0.0, 0.0
	for u := range delays {
		if delays[u] > lo {
			lo = delays[u]
		}
	}
	_, hi, _ = assign(math.Inf(1))
	for iter := 0; iter < 24; iter++ {
		mid := (lo + hi) / 2
		if _, _, s := assign(mid); s <= stages {
			hi = mid
		} else {
			lo = mid
		}
	}
	stageOf, worst, maxStage := assign(hi)
	// Count registers on stage-crossing unit outputs.
	regs := 0
	for _, u := range order {
		crossed := 0
		for _, w := range spec.DP.Wires {
			if w.From != u {
				continue
			}
			if d := stageOf[w.To] - stageOf[u]; d > crossed {
				crossed = d
			}
		}
		regs += crossed
	}
	return &PipelinedPE{
		Spec:      spec,
		Stages:    maxStage,
		PeriodPS:  worst,
		StageOf:   stageOf,
		ExtraRegs: regs,
	}
}

// Area returns the pipelined PE's core area: the datapath plus retiming
// registers.
func (p *PipelinedPE) Area(m *tech.Model) float64 {
	return p.Spec.Area(m) + float64(p.ExtraRegs)*m.Unit("reg16").Area
}

// unitDAG orders datapath units topologically (by longest-path level,
// skipping cycle-closing edges) and returns each unit's predecessors.
func unitDAG(spec *pe.Spec) (order []int, preds [][]int) {
	n := len(spec.DP.Units)
	preds = make([][]int, n)
	succ := make([][]int, n)
	for _, w := range spec.DP.Wires {
		succ[w.From] = append(succ[w.From], w.To)
	}
	// DFS finishing order gives a reverse topological order when cycle
	// edges are skipped.
	state := make([]uint8, n)
	var fin []int
	var visit func(u int)
	visit = func(u int) {
		if state[u] != 0 {
			return
		}
		state[u] = 1
		for _, v := range succ[u] {
			if state[v] == 1 {
				continue // cycle-closing edge: skip
			}
			visit(v)
		}
		state[u] = 2
		fin = append(fin, u)
	}
	for u := 0; u < n; u++ {
		visit(u)
	}
	order = make([]int, n)
	pos := make([]int, n)
	for i := range fin {
		order[n-1-i] = fin[i]
	}
	for i, u := range order {
		pos[u] = i
	}
	for _, w := range spec.DP.Wires {
		if pos[w.From] < pos[w.To] { // forward edges only
			preds[w.To] = append(preds[w.To], w.From)
		}
	}
	for u := range preds {
		sort.Ints(preds[u])
	}
	return order, preds
}

func unitDelays(spec *pe.Spec, m *tech.Model) []float64 {
	delays := make([]float64, len(spec.DP.Units))
	muxD := m.Unit("mux16").Delay
	fanin := map[[2]int]int{}
	for _, w := range spec.DP.Wires {
		fanin[[2]int{w.To, w.Port}]++
	}
	for u, unit := range spec.DP.Units {
		if unit.Kind != merge.UnitOp {
			continue
		}
		d := 0.0
		for _, op := range unit.Ops {
			if cl := op.HWClass(); cl != "" {
				if cd := m.HWClassCost(cl).Delay; cd > d {
					d = cd
				}
			}
		}
		// Account for the operand muxes in front of the unit.
		hasMux := false
		for p := 0; p < unit.MaxPorts(); p++ {
			if fanin[[2]int{u, p}] > 1 {
				hasMux = true
			}
		}
		if hasMux {
			d += muxD
		}
		delays[u] = d
	}
	return delays
}
