// Package cliutil holds the small helpers shared by every apex command
// line (apex, apex-eval, apex-rtl, apexd) so user-facing contracts —
// flag validation, usage errors — stay identical across binaries
// instead of drifting per CLI.
package cliutil

import (
	"fmt"
	"runtime"
)

// MaxWorkers bounds how many workers a -j flag may ask for. The limit
// is far above any sane machine; its job is to turn a typo (-j 1e9, a
// negative overflowed shift) into a clean usage error instead of a
// process that dies allocating goroutines.
const MaxWorkers = 4096

// Workers validates a worker-count flag. The flags default to
// runtime.GOMAXPROCS(0), so any j <= 0 is an explicit user mistake and
// is rejected with a usage error naming the flag, as is anything above
// MaxWorkers. The returned count is j unchanged when valid.
func Workers(flagName string, j int) (int, error) {
	if j <= 0 {
		return 0, fmt.Errorf("%s must be at least 1 (got %d); the default is the number of CPUs (%d)",
			flagName, j, runtime.GOMAXPROCS(0))
	}
	if j > MaxWorkers {
		return 0, fmt.Errorf("%s is absurdly large (got %d, max %d)", flagName, j, MaxWorkers)
	}
	return j, nil
}

// DefaultWorkers is the shared default for -j flags: one worker per
// available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }
