package cliutil

import (
	"runtime"
	"strings"
	"testing"
)

func TestWorkersValid(t *testing.T) {
	for _, j := range []int{1, 2, runtime.GOMAXPROCS(0), MaxWorkers} {
		got, err := Workers("-j", j)
		if err != nil || got != j {
			t.Errorf("Workers(-j, %d) = %d, %v; want %d, nil", j, got, err, j)
		}
	}
}

func TestWorkersRejected(t *testing.T) {
	cases := []struct {
		j    int
		want string
	}{
		{0, "at least 1"},
		{-1, "at least 1"},
		{-999999, "at least 1"},
		{MaxWorkers + 1, "absurdly large"},
		{1 << 30, "absurdly large"},
	}
	for _, c := range cases {
		_, err := Workers("-j", c.j)
		if err == nil {
			t.Errorf("Workers(-j, %d): want error, got nil", c.j)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Workers(-j, %d) error %q does not mention %q", c.j, err, c.want)
		}
		if !strings.Contains(err.Error(), "-j") {
			t.Errorf("Workers(-j, %d) error %q does not name the flag", c.j, err)
		}
	}
}
