package ir

// Optimize applies standard cleanup passes to an application graph and
// returns the optimized copy: constant folding (compute nodes whose
// operands are all constants become constants), algebraic identity
// simplification (via the same rules the canonicalizer proves sound),
// common subexpression elimination, and dead code elimination (nodes
// that reach no output are dropped). The frontend runs this after
// parsing; hand-built graphs may use it too.
//
// Structural nodes (memories, registers, FIFOs, ROMs) are barriers: they
// are never folded, merged, or reordered — only removed when dead.
func Optimize(g *Graph) *Graph {
	folded := foldAndCSE(g)
	return eliminateDead(folded)
}

// foldAndCSE rebuilds the graph in topological order, folding constant
// subtrees, applying identity rules, and value-numbering identical nodes.
func foldAndCSE(g *Graph) *Graph {
	out := NewGraph(g.Name)
	remap := make([]NodeRef, len(g.Nodes))
	valueNum := map[string]NodeRef{}

	intern := func(key string, build func() NodeRef) NodeRef {
		if ref, ok := valueNum[key]; ok {
			return ref
		}
		ref := build()
		valueNum[key] = ref
		return ref
	}

	order := make([]NodeRef, 0, len(g.Nodes))
	state := make([]uint8, len(g.Nodes))
	var visit func(v NodeRef)
	visit = func(v NodeRef) {
		if state[v] != 0 {
			return
		}
		state[v] = 1
		for _, a := range g.Nodes[v].Args {
			visit(a)
		}
		order = append(order, v)
	}
	for v := range g.Nodes {
		visit(NodeRef(v))
	}

	for _, v := range order {
		n := g.Nodes[v]
		switch n.Op {
		case OpInput, OpInputB:
			remap[v] = intern("in:"+n.Name+opSuffix(n.Op), func() NodeRef {
				if n.Op == OpInputB {
					return out.InputB(n.Name)
				}
				return out.Input(n.Name)
			})
		case OpConst:
			remap[v] = internConst(out, valueNum, n.Val, false)
		case OpConstB:
			remap[v] = internConst(out, valueNum, n.Val&1, true)
		case OpOutput:
			remap[v] = out.Output(n.Name, remap[n.Args[0]])
		case OpReg, OpMem, OpRegFileFIFO, OpRom:
			// Barrier: copy as-is (no folding through state).
			nn := n
			nn.Args = []NodeRef{remap[n.Args[0]]}
			out.Nodes = append(out.Nodes, nn)
			remap[v] = NodeRef(len(out.Nodes) - 1)
		default:
			remap[v] = simplifyCompute(out, valueNum, n, remap)
		}
	}
	return out
}

func opSuffix(op Op) string {
	if op == OpInputB {
		return "/b"
	}
	return ""
}

func internConst(out *Graph, valueNum map[string]NodeRef, val uint16, bit bool) NodeRef {
	key := "c:" + itoa16(val)
	if bit {
		key += "/b"
	}
	if ref, ok := valueNum[key]; ok {
		return ref
	}
	var ref NodeRef
	if bit {
		ref = out.ConstB(val != 0)
	} else {
		ref = out.Const(val)
	}
	valueNum[key] = ref
	return ref
}

// simplifyCompute folds/simplifies one compute node and value-numbers the
// result.
func simplifyCompute(out *Graph, valueNum map[string]NodeRef, n Node, remap []NodeRef) NodeRef {
	args := make([]NodeRef, len(n.Args))
	allConst := true
	vals := make([]uint16, len(n.Args))
	for i, a := range n.Args {
		args[i] = remap[a]
		an := out.Nodes[args[i]]
		if an.Op == OpConst || an.Op == OpConstB {
			vals[i] = an.Val
		} else {
			allConst = false
		}
	}
	// Constant folding.
	if allConst && len(args) > 0 {
		v := EvalOp(n.Op, vals, n.Val)
		return internConst(out, valueNum, v, n.Op.BitResult())
	}
	// Identity simplification: x+0, x*1, x*0, x&0, x|0, x^0, shifts by 0,
	// sel with constant condition.
	if ref, ok := identity(out, n, args); ok {
		return ref
	}
	// CSE key: op + immediate + operand refs (commutative ops sort the
	// first two operands).
	a, b := -1, -1
	if len(args) >= 2 {
		a, b = int(args[0]), int(args[1])
		if n.Op.Commutative() && b < a {
			a, b = b, a
		}
	}
	key := "op:" + n.Op.Name() + "/" + itoa16(n.Val)
	if len(args) >= 2 {
		key += ":" + itoa16(uint16(a)) + "," + itoa16(uint16(b))
		for _, x := range args[2:] {
			key += "," + itoa16(uint16(x))
		}
	} else {
		for _, x := range args {
			key += ":" + itoa16(uint16(x))
		}
	}
	return intern2(valueNum, key, func() NodeRef {
		nn := n
		nn.Args = args
		if len(args) >= 2 && n.Op.Commutative() {
			nn.Args = append([]NodeRef(nil), args...)
			nn.Args[0], nn.Args[1] = NodeRef(a), NodeRef(b)
		}
		out.Nodes = append(out.Nodes, nn)
		return NodeRef(len(out.Nodes) - 1)
	})
}

func intern2(valueNum map[string]NodeRef, key string, build func() NodeRef) NodeRef {
	if ref, ok := valueNum[key]; ok {
		return ref
	}
	ref := build()
	valueNum[key] = ref
	return ref
}

// identity applies safe algebraic identities when one operand is a known
// constant. Returns (simplified ref, true) when a rewrite applies.
func identity(out *Graph, n Node, args []NodeRef) (NodeRef, bool) {
	constVal := func(i int) (uint16, bool) {
		an := out.Nodes[args[i]]
		if an.Op == OpConst {
			return an.Val, true
		}
		return 0, false
	}
	switch n.Op {
	case OpAdd, OpOr, OpXor:
		if v, ok := constVal(1); ok && v == 0 {
			return args[0], true
		}
		if v, ok := constVal(0); ok && v == 0 {
			return args[1], true
		}
	case OpSub:
		if v, ok := constVal(1); ok && v == 0 {
			return args[0], true
		}
		if args[0] == args[1] {
			return out.Const(0), true
		}
	case OpMul:
		for i := 0; i < 2; i++ {
			if v, ok := constVal(i); ok {
				if v == 1 {
					return args[1-i], true
				}
			}
		}
	case OpAnd:
		if v, ok := constVal(1); ok && v == 0xffff {
			return args[0], true
		}
		if v, ok := constVal(0); ok && v == 0xffff {
			return args[1], true
		}
	case OpShl, OpLshr, OpAshr:
		if v, ok := constVal(1); ok && v&15 == 0 {
			return args[0], true
		}
	case OpSel:
		cn := out.Nodes[args[0]]
		if cn.Op == OpConstB {
			if cn.Val&1 != 0 {
				return args[1], true
			}
			return args[2], true
		}
		if args[1] == args[2] {
			return args[1], true
		}
	}
	return 0, false
}

// eliminateDead drops nodes unreachable from any output.
func eliminateDead(g *Graph) *Graph {
	live := make([]bool, len(g.Nodes))
	var mark func(v NodeRef)
	mark = func(v NodeRef) {
		if live[v] {
			return
		}
		live[v] = true
		for _, a := range g.Nodes[v].Args {
			mark(a)
		}
	}
	for i, n := range g.Nodes {
		if n.Op == OpOutput {
			mark(NodeRef(i))
		}
	}
	out := NewGraph(g.Name)
	remap := make([]NodeRef, len(g.Nodes))
	for i, n := range g.Nodes {
		if !live[i] {
			continue
		}
		nn := n
		nn.Args = make([]NodeRef, len(n.Args))
		for j, a := range n.Args {
			nn.Args[j] = remap[a]
		}
		out.Nodes = append(out.Nodes, nn)
		remap[i] = NodeRef(len(out.Nodes) - 1)
	}
	return out
}

func itoa16(v uint16) string {
	const digits = "0123456789abcdef"
	return string([]byte{
		digits[v>>12&0xf], digits[v>>8&0xf], digits[v>>4&0xf], digits[v&0xf],
	})
}
