package ir

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOptimizeConstantFolding(t *testing.T) {
	g := NewGraph("cf")
	a := g.Const(3)
	b := g.Const(4)
	s := g.OpNode(OpMul, a, b)
	x := g.Input("x")
	g.Output("o", g.OpNode(OpAdd, x, s))
	opt := Optimize(g)
	if got := opt.ComputeNodeCount(); got != 1 {
		t.Errorf("compute nodes after folding = %d, want 1 (just the add)", got)
	}
	out, _ := opt.Eval(map[string]uint16{"x": 10})
	if out["o"] != 22 {
		t.Errorf("folded eval = %d, want 22", out["o"])
	}
}

func TestOptimizeIdentities(t *testing.T) {
	g := NewGraph("id")
	x := g.Input("x")
	v := g.OpNode(OpAdd, x, g.Const(0))     // x
	v = g.OpNode(OpMul, v, g.Const(1))      // x
	v = g.OpNode(OpShl, v, g.Const(0))      // x
	v = g.OpNode(OpAnd, v, g.Const(0xffff)) // x
	g.Output("o", v)
	opt := Optimize(g)
	if got := opt.ComputeNodeCount(); got != 0 {
		t.Errorf("identities left %d compute nodes, want 0", got)
	}
	out, _ := opt.Eval(map[string]uint16{"x": 77})
	if out["o"] != 77 {
		t.Errorf("o = %d, want 77", out["o"])
	}
}

func TestOptimizeCSE(t *testing.T) {
	g := NewGraph("cse")
	x := g.Input("x")
	y := g.Input("y")
	a := g.OpNode(OpMul, x, y)
	b := g.OpNode(OpMul, y, x) // commutative duplicate
	g.Output("o", g.OpNode(OpAdd, a, b))
	opt := Optimize(g)
	if got := opt.CountOps()[OpMul]; got != 1 {
		t.Errorf("muls after CSE = %d, want 1", got)
	}
	out, _ := opt.Eval(map[string]uint16{"x": 5, "y": 6})
	if out["o"] != 60 {
		t.Errorf("o = %d, want 60", out["o"])
	}
}

func TestOptimizeDeadCode(t *testing.T) {
	g := NewGraph("dce")
	x := g.Input("x")
	g.OpNode(OpMul, x, x) // dead
	dead := g.OpNode(OpAdd, x, g.Const(9))
	_ = dead
	g.Output("o", x)
	opt := Optimize(g)
	if got := opt.ComputeNodeCount(); got != 0 {
		t.Errorf("dead compute nodes survived: %d", got)
	}
}

func TestOptimizeKeepsStructuralBarriers(t *testing.T) {
	g := NewGraph("bar")
	a := g.Const(5)
	m := g.Mem(a) // memory of a constant must NOT fold
	g.Output("o", g.OpNode(OpAdd, m, g.Const(1)))
	opt := Optimize(g)
	if opt.CountOps()[OpMem] != 1 {
		t.Error("memory node folded away")
	}
	// Cycle semantics preserved.
	lat1, _ := g.TotalLatency()
	lat2, _ := opt.TotalLatency()
	if lat1 != lat2 {
		t.Errorf("latency changed: %d -> %d", lat1, lat2)
	}
}

func TestOptimizeSelConstantCondition(t *testing.T) {
	g := NewGraph("sel")
	x := g.Input("x")
	y := g.Input("y")
	g.Output("o", g.OpNode(OpSel, g.ConstB(true), x, y))
	opt := Optimize(g)
	if opt.CountOps()[OpSel] != 0 {
		t.Error("constant-condition select survived")
	}
	out, _ := opt.Eval(map[string]uint16{"x": 1, "y": 2})
	if out["o"] != 1 {
		t.Errorf("o = %d, want 1", out["o"])
	}
}

// randomOptGraph builds a random graph exercising folding opportunities.
func randomOptGraph(rng *rand.Rand, n int) *Graph {
	g := NewGraph("fuzz")
	var pool []NodeRef
	for i := 0; i < 3; i++ {
		pool = append(pool, g.Input(fmt.Sprintf("i%d", i)))
	}
	for i := 0; i < 4; i++ {
		pool = append(pool, g.Const(uint16(rng.Intn(4)))) // small consts hit identities
	}
	ops := []Op{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpLshr, OpUMin, OpSMax}
	for i := 0; i < n; i++ {
		op := ops[rng.Intn(len(ops))]
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		pool = append(pool, g.OpNode(op, a, b))
	}
	g.Output("o", pool[len(pool)-1])
	g.Output("p", pool[rng.Intn(len(pool))])
	return g
}

// Property: optimization preserves semantics and never grows the graph.
func TestOptimizePreservesSemanticsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomOptGraph(rng, 3+rng.Intn(25))
		opt := Optimize(g)
		if opt.Validate() != nil {
			return false
		}
		if opt.NumNodes() > g.NumNodes() {
			return false
		}
		for trial := 0; trial < 12; trial++ {
			env := map[string]uint16{
				"i0": uint16(rng.Intn(1 << 16)),
				"i1": uint16(rng.Intn(1 << 16)),
				"i2": uint16(rng.Intn(1 << 16)),
			}
			want, err1 := g.Eval(env)
			got, err2 := opt.Eval(env)
			if err1 != nil || err2 != nil {
				return false
			}
			for name, w := range want {
				if got[name] != w {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		g := randomOptGraph(rng, 15)
		once := Optimize(g)
		twice := Optimize(once)
		if once.NumNodes() != twice.NumNodes() {
			t.Fatalf("not idempotent: %d -> %d nodes", once.NumNodes(), twice.NumNodes())
		}
	}
}
