package ir

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestApplyConstantFolding(t *testing.T) {
	e := Apply(OpAdd, 0, ConstExpr(3), ConstExpr(4))
	if e.Kind != ExprConst || e.Val != 7 {
		t.Fatalf("3+4 folded to %v", e)
	}
	e = Apply(OpMul, 0, ConstExpr(300), ConstExpr(300))
	if e.Kind != ExprConst || e.Val != uint16(300*300&0xffff) {
		t.Fatalf("300*300 folded to %v", e)
	}
}

func TestApplyIdentities(t *testing.T) {
	x := Var("x")
	cases := []struct {
		name string
		got  *Expr
		want string
	}{
		{"x+0", Apply(OpAdd, 0, x, ConstExpr(0)), x.Key()},
		{"x*1", Apply(OpMul, 0, x, ConstExpr(1)), x.Key()},
		{"x*0", Apply(OpMul, 0, x, ConstExpr(0)), ConstExpr(0).Key()},
		{"x&0xffff", Apply(OpAnd, 0, x, ConstExpr(0xffff)), x.Key()},
		{"x&0", Apply(OpAnd, 0, x, ConstExpr(0)), ConstExpr(0).Key()},
		{"x|0", Apply(OpOr, 0, x, ConstExpr(0)), x.Key()},
		{"x^0", Apply(OpXor, 0, x, ConstExpr(0)), x.Key()},
		{"x^x", Apply(OpXor, 0, x, x), ConstExpr(0).Key()},
		{"x-x", Apply(OpSub, 0, x, x), ConstExpr(0).Key()},
		{"x<<0", Apply(OpShl, 0, x, ConstExpr(0)), x.Key()},
		{"neg(neg(x))", Apply(OpNeg, 0, Apply(OpNeg, 0, x)), x.Key()},
		{"not(not(x))", Apply(OpNot, 0, Apply(OpNot, 0, x)), x.Key()},
		{"min(x,x)", Apply(OpSMin, 0, x, x), x.Key()},
		{"sel(c,x,x)", Apply(OpSel, 0, Var("c"), x, x), x.Key()},
		{"sel(1,x,y)", Apply(OpSel, 0, ConstExpr(1), x, Var("y")), x.Key()},
		{"eq(x,x)", Apply(OpEq, 0, x, x), ConstExpr(1).Key()},
	}
	for _, c := range cases {
		if c.got.Key() != c.want {
			t.Errorf("%s: key %q, want %q", c.name, c.got.Key(), c.want)
		}
	}
}

func TestCommutativeCanonical(t *testing.T) {
	x, y := Var("x"), Var("y")
	if Apply(OpAdd, 0, x, y).Key() != Apply(OpAdd, 0, y, x).Key() {
		t.Error("x+y and y+x differ")
	}
	if Apply(OpMul, 0, x, y).Key() != Apply(OpMul, 0, y, x).Key() {
		t.Error("x*y and y*x differ")
	}
	// Non-commutative must differ.
	if Apply(OpShl, 0, x, y).Key() == Apply(OpShl, 0, y, x).Key() {
		t.Error("x<<y and y<<x collide")
	}
}

func TestAssociativeFlattening(t *testing.T) {
	x, y, z := Var("x"), Var("y"), Var("z")
	left := Apply(OpAdd, 0, Apply(OpAdd, 0, x, y), z)
	right := Apply(OpAdd, 0, x, Apply(OpAdd, 0, y, z))
	if left.Key() != right.Key() {
		t.Errorf("(x+y)+z != x+(y+z): %q vs %q", left.Key(), right.Key())
	}
}

func TestSubLowering(t *testing.T) {
	x, y := Var("x"), Var("y")
	sub := Apply(OpSub, 0, x, y)
	addNeg := Apply(OpAdd, 0, x, Apply(OpNeg, 0, y))
	if sub.Key() != addNeg.Key() {
		t.Errorf("x-y and x+neg(y) differ: %q vs %q", sub.Key(), addNeg.Key())
	}
	// (x-y)+y must normalize back to x.
	roundTrip := Apply(OpAdd, 0, sub, y)
	if roundTrip.Key() != x.Key() {
		t.Errorf("(x-y)+y = %q, want x", roundTrip.Key())
	}
}

// randomExprAndGraph builds a random expression tree as both an Expr and a
// parallel direct evaluation function, to check normalization soundness.
type exprCase struct {
	expr *Expr
	eval func(env map[string]uint16) uint16
}

func randomExprCase(rng *rand.Rand, depth int, vars []string) exprCase {
	if depth == 0 || rng.Float64() < 0.3 {
		if rng.Float64() < 0.3 {
			v := uint16(rng.Intn(1 << 16))
			return exprCase{ConstExpr(v), func(map[string]uint16) uint16 { return v }}
		}
		name := vars[rng.Intn(len(vars))]
		return exprCase{Var(name), func(env map[string]uint16) uint16 { return env[name] }}
	}
	binOps := []Op{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpSMin, OpSMax, OpUMin, OpUMax, OpShl, OpLshr, OpAshr}
	op := binOps[rng.Intn(len(binOps))]
	a := randomExprCase(rng, depth-1, vars)
	b := randomExprCase(rng, depth-1, vars)
	return exprCase{
		Apply(op, 0, a.expr, b.expr),
		func(env map[string]uint16) uint16 {
			return EvalOp(op, []uint16{a.eval(env), b.eval(env)}, 0)
		},
	}
}

// Property: normalization preserves semantics — the normalized Expr
// evaluates identically to the direct computation, for random trees and
// random inputs.
func TestNormalizationSoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vars := []string{"a", "b", "c"}
		c := randomExprCase(rng, 4, vars)
		for trial := 0; trial < 16; trial++ {
			env := map[string]uint16{
				"a": uint16(rng.Intn(1 << 16)),
				"b": uint16(rng.Intn(1 << 16)),
				"c": uint16(rng.Intn(1 << 16)),
			}
			if EvalExpr(c.expr, env) != c.eval(env) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: equal keys imply equal evaluation on random inputs (keys are a
// sound equivalence witness).
func TestKeyEqualityImpliesSemanticEqualityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vars := []string{"a", "b"}
		x := randomExprCase(rng, 3, vars)
		y := randomExprCase(rng, 3, vars)
		if x.expr.Key() != y.expr.Key() {
			return true // nothing to check
		}
		for trial := 0; trial < 32; trial++ {
			env := map[string]uint16{
				"a": uint16(rng.Intn(1 << 16)),
				"b": uint16(rng.Intn(1 << 16)),
			}
			if x.eval(env) != y.eval(env) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSymbolicEvalMAC(t *testing.T) {
	g := buildMAC()
	outs, err := g.SymbolicEval()
	if err != nil {
		t.Fatal(err)
	}
	e := outs["out"]
	if e == nil {
		t.Fatal("no symbolic output")
	}
	want := Apply(OpAdd, 0, Apply(OpMul, 0, Var("a"), Var("b")), Var("c"))
	if e.Key() != want.Key() {
		t.Errorf("symbolic MAC = %q, want %q", e.Key(), want.Key())
	}
	vars := e.Vars()
	if len(vars) != 3 {
		t.Errorf("vars = %v, want a b c", vars)
	}
}

func TestSymbolicEvalMatchesConcrete(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := buildMAC()
	outs, _ := g.SymbolicEval()
	for trial := 0; trial < 50; trial++ {
		env := map[string]uint16{
			"a": uint16(rng.Intn(1 << 16)),
			"b": uint16(rng.Intn(1 << 16)),
			"c": uint16(rng.Intn(1 << 16)),
		}
		concrete, _ := g.Eval(env)
		if EvalExpr(outs["out"], env) != concrete["out"] {
			t.Fatalf("symbolic and concrete eval disagree on %v", env)
		}
	}
}

func TestExprString(t *testing.T) {
	e := Apply(OpAdd, 0, Var("x"), ConstExpr(2))
	s := e.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
