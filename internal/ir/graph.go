package ir

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/graph"
)

// NodeRef identifies a node within a Graph.
type NodeRef int

// Node is a single IR operation instance.
type Node struct {
	Op   Op
	Args []NodeRef
	Val  uint16 // constant value, LUT truth table, or FIFO depth
	Name string // IO name for inputs/outputs; optional elsewhere
}

// Graph is a dataflow DAG of IR nodes. Node 0 is the first added node;
// references are indices into Nodes.
//
// Construction errors are sticky rather than fatal: a misuse of a builder
// method (e.g. OpNode with the wrong operand count) records the first such
// error on the graph and construction continues with a best-effort node, so
// fluent builder chains need no per-call error handling. Err reports the
// first recorded error, and Validate, Eval, and Simulate surface it, so a
// malformed graph cannot silently flow into evaluation.
type Graph struct {
	Nodes []Node
	Name  string
	err   error
}

// Failf records a construction error on the graph. Only the first error is
// kept; later ones are dropped. The error is classified fault.ErrInvariant.
func (g *Graph) Failf(format string, args ...any) {
	if g.err == nil {
		g.err = fault.Invariantf(format, args...)
	}
}

// Err reports the first construction error recorded on the graph, or nil.
func (g *Graph) Err() error { return g.err }

// NewGraph returns an empty named graph.
func NewGraph(name string) *Graph { return &Graph{Name: name} }

// add appends a node and returns its ref.
func (g *Graph) add(n Node) NodeRef {
	g.Nodes = append(g.Nodes, n)
	return NodeRef(len(g.Nodes) - 1)
}

// Input adds a named 16-bit stream input.
func (g *Graph) Input(name string) NodeRef {
	return g.add(Node{Op: OpInput, Name: name})
}

// InputB adds a named 1-bit stream input.
func (g *Graph) InputB(name string) NodeRef {
	return g.add(Node{Op: OpInputB, Name: name})
}

// Const adds a 16-bit constant node.
func (g *Graph) Const(v uint16) NodeRef {
	return g.add(Node{Op: OpConst, Val: v})
}

// ConstB adds a 1-bit constant node.
func (g *Graph) ConstB(v bool) NodeRef {
	val := uint16(0)
	if v {
		val = 1
	}
	return g.add(Node{Op: OpConstB, Val: val})
}

// OpNode adds a compute or structural node with the given operands. An
// operand count that does not match the op's arity records a sticky
// construction error (see Err) and the node is still added so the returned
// ref stays usable by subsequent builder calls.
func (g *Graph) OpNode(op Op, args ...NodeRef) NodeRef {
	if a := op.Arity(); a >= 0 && len(args) != a {
		g.Failf("ir: %s takes %d args, got %d", op, a, len(args))
	}
	return g.add(Node{Op: op, Args: append([]NodeRef(nil), args...)})
}

// LUT adds a 3-input LUT node with the given 8-bit truth table.
func (g *Graph) LUT(table uint8, a, b, c NodeRef) NodeRef {
	return g.add(Node{Op: OpLUT, Val: uint16(table), Args: []NodeRef{a, b, c}})
}

// Reg adds a pipeline register after src.
func (g *Graph) Reg(src NodeRef) NodeRef {
	return g.add(Node{Op: OpReg, Args: []NodeRef{src}})
}

// RegFileFIFO adds a register-file FIFO of the given depth after src.
func (g *Graph) RegFileFIFO(src NodeRef, depth int) NodeRef {
	return g.add(Node{Op: OpRegFileFIFO, Val: uint16(depth), Args: []NodeRef{src}})
}

// Mem adds a memory-tile (line buffer) node after src.
func (g *Graph) Mem(src NodeRef) NodeRef {
	return g.add(Node{Op: OpMem, Args: []NodeRef{src}})
}

// Rom adds a constant-table lookup addressed by addr. Val selects a table
// id that the evaluator hashes into deterministic contents.
func (g *Graph) Rom(addr NodeRef, tableID uint16) NodeRef {
	return g.add(Node{Op: OpRom, Val: tableID, Args: []NodeRef{addr}})
}

// Output adds a named output fed by src.
func (g *Graph) Output(name string, src NodeRef) NodeRef {
	return g.add(Node{Op: OpOutput, Name: name, Args: []NodeRef{src}})
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// Clone returns a deep copy of the graph, including any sticky error.
func (g *Graph) Clone() *Graph {
	c := &Graph{Name: g.Name, Nodes: make([]Node, len(g.Nodes)), err: g.err}
	for i, n := range g.Nodes {
		c.Nodes[i] = n
		c.Nodes[i].Args = append([]NodeRef(nil), n.Args...)
	}
	return c
}

// Inputs returns the refs of all input nodes (both widths) in order.
func (g *Graph) Inputs() []NodeRef {
	var ins []NodeRef
	for i, n := range g.Nodes {
		if n.Op == OpInput || n.Op == OpInputB {
			ins = append(ins, NodeRef(i))
		}
	}
	return ins
}

// Outputs returns the refs of all output nodes in order.
func (g *Graph) Outputs() []NodeRef {
	var outs []NodeRef
	for i, n := range g.Nodes {
		if n.Op == OpOutput {
			outs = append(outs, NodeRef(i))
		}
	}
	return outs
}

// CountOps tallies nodes per op.
func (g *Graph) CountOps() map[Op]int {
	m := make(map[Op]int)
	for _, n := range g.Nodes {
		m[n.Op]++
	}
	return m
}

// ComputeNodeCount returns the number of minable compute nodes.
func (g *Graph) ComputeNodeCount() int {
	c := 0
	for _, n := range g.Nodes {
		if n.Op.IsCompute() {
			c++
		}
	}
	return c
}

// Validate checks referential integrity, arities, and acyclicity, and
// surfaces any sticky construction error first.
func (g *Graph) Validate() error {
	if g.err != nil {
		return g.err
	}
	for i, n := range g.Nodes {
		info, ok := opTable[n.Op]
		if !ok || n.Op == OpInvalid {
			return fmt.Errorf("ir: node %d has invalid op %d", i, n.Op)
		}
		if info.arity >= 0 && len(n.Args) != info.arity {
			return fmt.Errorf("ir: node %d (%s) has %d args, want %d", i, n.Op, len(n.Args), info.arity)
		}
		for _, a := range n.Args {
			if a < 0 || int(a) >= len(g.Nodes) {
				return fmt.Errorf("ir: node %d (%s) references out-of-range node %d", i, n.Op, a)
			}
		}
	}
	if _, err := g.topoOrder(); err != nil {
		return err
	}
	return nil
}

// topoOrder returns node refs in dependency order (operands first).
func (g *Graph) topoOrder() ([]NodeRef, error) {
	n := len(g.Nodes)
	state := make([]uint8, n) // 0 unvisited, 1 in-stack, 2 done
	order := make([]NodeRef, 0, n)
	var visit func(v NodeRef) error
	visit = func(v NodeRef) error {
		switch state[v] {
		case 1:
			return fmt.Errorf("ir: cycle through node %d (%s)", v, g.Nodes[v].Op)
		case 2:
			return nil
		}
		state[v] = 1
		for _, a := range g.Nodes[v].Args {
			if err := visit(a); err != nil {
				return err
			}
		}
		state[v] = 2
		order = append(order, v)
		return nil
	}
	for v := 0; v < n; v++ {
		if err := visit(NodeRef(v)); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// ToLabeled converts the IR graph into the generic labeled graph the miner
// operates on. Every IR node becomes a graph node labeled with the op name;
// every operand relation becomes a ported edge (arg -> user, port =
// operand index). Commutative two-operand ops are canonicalized to port 0
// on both operands so that mining does not split a commutative pattern
// into spurious port variants.
func (g *Graph) ToLabeled() (*graph.Graph, []NodeRef) {
	lg := graph.New()
	refs := make([]NodeRef, len(g.Nodes))
	for i, n := range g.Nodes {
		lg.AddNode(n.Op.Name())
		refs[i] = NodeRef(i)
	}
	for i, n := range g.Nodes {
		comm := n.Op.Commutative() && len(n.Args) == 2
		for p, a := range n.Args {
			port := p
			if comm {
				port = 0
			}
			lg.AddEdge(graph.NodeID(a), graph.NodeID(i), port)
		}
	}
	return lg, refs
}

// FromLabeled converts a mined pattern (generic labeled graph) back into an
// IR graph. Node labels must be valid op names. Edge ports give operand
// positions; for commutative ops mined with collapsed ports, operands are
// assigned in edge order. Pattern nodes with missing operands get fresh
// Input leaves so the result is a well-formed IR graph ("pattern inputs").
func FromLabeled(p *graph.Graph) (*Graph, error) {
	g := NewGraph("pattern")
	refs := make([]NodeRef, p.NumNodes())
	order, err := p.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("ir: pattern not a DAG: %w", err)
	}
	for i := range refs {
		refs[i] = -1
	}
	inputCount := 0
	for _, v := range order {
		op := OpByName(p.Label(v))
		if op == OpInvalid {
			return nil, fmt.Errorf("ir: unknown op label %q", p.Label(v))
		}
		arity := op.Arity()
		args := make([]NodeRef, arity)
		for i := range args {
			args[i] = -1
		}
		// Fill operands from incoming edges.
		free := func() int {
			for i, a := range args {
				if a < 0 {
					return i
				}
			}
			return -1
		}
		for _, e := range p.In(v) {
			src := refs[e.From]
			if src < 0 {
				return nil, fmt.Errorf("ir: pattern edge from unprocessed node %d", e.From)
			}
			slot := e.Port
			if slot >= arity || args[slot] >= 0 {
				slot = free()
			}
			if slot < 0 {
				return nil, fmt.Errorf("ir: pattern node %d (%s) has too many operands", v, op)
			}
			args[slot] = src
		}
		// Remaining operands become pattern inputs.
		for i, a := range args {
			if a >= 0 {
				continue
			}
			var in NodeRef
			if op == OpLUT || (op == OpSel && i == 0) {
				in = g.InputB(fmt.Sprintf("pin%d", inputCount))
			} else {
				in = g.Input(fmt.Sprintf("pin%d", inputCount))
			}
			inputCount++
			args[i] = in
		}
		if arity == 0 {
			refs[v] = g.add(Node{Op: op})
		} else {
			refs[v] = g.OpNode(op, args...)
		}
	}
	// Nodes with no users become outputs.
	used := make([]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, a := range n.Args {
			used[a] = true
		}
	}
	var sinks []NodeRef
	for i := range used {
		if !used[i] && g.Nodes[i].Op != OpOutput {
			sinks = append(sinks, NodeRef(i))
		}
	}
	for outIdx, s := range sinks {
		g.Output(fmt.Sprintf("pout%d", outIdx), s)
	}
	return g, nil
}
