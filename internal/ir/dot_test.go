package ir

import (
	"strings"
	"testing"
)

func TestDOTOutput(t *testing.T) {
	g := NewGraph("dot")
	a := g.Input("a")
	c := g.Const(7)
	m := g.OpNode(OpMul, a, c)
	r := g.Reg(m)
	g.Output("out", r)

	dot := g.DOT()
	for _, want := range []string{
		"digraph \"dot\"", `label="a"`, `label="7"`, `label="mul"`,
		`label="reg"`, `label="out"`, "->", "}",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Multi-operand edges carry port labels.
	if !strings.Contains(dot, `[label="0"]`) || !strings.Contains(dot, `[label="1"]`) {
		t.Error("port labels missing on mul's operands")
	}
}

func TestDOTDeterministic(t *testing.T) {
	g := NewGraph("x")
	a := g.Input("a")
	g.Output("o", g.OpNode(OpAbs, a))
	if g.DOT() != g.DOT() {
		t.Error("DOT not deterministic")
	}
}

func TestDOTAllShapes(t *testing.T) {
	g := NewGraph("shapes")
	a := g.Input("a")
	b := g.InputB("b")
	lut := g.LUT(0xAA, b, g.ConstB(true), b)
	mem := g.Mem(a)
	rf := g.RegFileFIFO(mem, 3)
	rom := g.Rom(a, 2)
	s := g.OpNode(OpSel, lut, rf, rom)
	g.Output("o", s)
	dot := g.DOT()
	for _, want := range []string{"cylinder", "diamond", "ellipse", "doubleoctagon", "lut 0xaa", "rf[3]", "rom2"} {
		if !strings.Contains(dot, want) {
			t.Errorf("missing %q", want)
		}
	}
}
