package ir

import (
	"fmt"
	"sort"
	"strings"
)

// ExprKind discriminates symbolic expression nodes.
type ExprKind uint8

const (
	ExprVar ExprKind = iota
	ExprConst
	ExprOp
)

// Expr is a normalized symbolic expression over 16-bit words. Expressions
// are the "formal model" of this reproduction: the rewrite-rule
// synthesizer proves a PE configuration implements an operation by
// normalizing both to canonical expressions and comparing keys (then
// cross-checks by simulation). Expressions are immutable after
// construction via the constructors below.
type Expr struct {
	Kind ExprKind
	Op   Op
	Val  uint16
	Name string
	Kids []*Expr
	key  string
}

// Var returns a variable expression.
func Var(name string) *Expr {
	e := &Expr{Kind: ExprVar, Name: name}
	e.key = "v:" + name
	return e
}

// ConstExpr returns a constant expression.
func ConstExpr(v uint16) *Expr {
	e := &Expr{Kind: ExprConst, Val: v}
	e.key = fmt.Sprintf("c:%d", v)
	return e
}

// Key returns the canonical key; equal keys mean structurally identical
// normalized expressions (and therefore semantic equality).
func (e *Expr) Key() string { return e.key }

func (e *Expr) String() string {
	switch e.Kind {
	case ExprVar:
		return e.Name
	case ExprConst:
		return fmt.Sprintf("%d", e.Val)
	default:
		parts := make([]string, len(e.Kids))
		for i, k := range e.Kids {
			parts[i] = k.String()
		}
		if e.Op == OpLUT {
			return fmt.Sprintf("lut[%#x](%s)", e.Val, strings.Join(parts, ", "))
		}
		return fmt.Sprintf("%s(%s)", e.Op, strings.Join(parts, ", "))
	}
}

// Apply builds the normalized expression op(args...). val carries the
// immediate for LUT/ROM nodes. Normalization performs constant folding,
// identity elimination, involution collapsing, subtraction lowering
// (sub(a,b) → add(a, neg(b))), and flattening plus canonical sorting of
// associative-commutative operators.
func Apply(op Op, val uint16, args ...*Expr) *Expr {
	// Constant folding first: if every operand is constant the op is too.
	allConst := len(args) > 0
	for _, a := range args {
		if a.Kind != ExprConst {
			allConst = false
			break
		}
	}
	if allConst {
		vals := make([]uint16, len(args))
		for i, a := range args {
			vals[i] = a.Val
		}
		return ConstExpr(EvalOp(op, vals, val))
	}

	switch op {
	case OpSub:
		// Lower to add(a, neg(b)) so that sub chains and add/neg mixes
		// normalize to the same form.
		return Apply(OpAdd, 0, args[0], Apply(OpNeg, 0, args[1]))
	case OpNeg:
		a := args[0]
		if a.Kind == ExprOp && a.Op == OpNeg {
			return a.Kids[0] // neg(neg(x)) = x
		}
	case OpNot:
		a := args[0]
		if a.Kind == ExprOp && a.Op == OpNot {
			return a.Kids[0]
		}
	case OpAdd:
		args = flattenAC(OpAdd, args)
		args = foldConsts(OpAdd, 0, args)
		args = dropIdentity(args, 0)
		args = cancelNegPairs(args)
		if len(args) == 0 {
			return ConstExpr(0)
		}
		if len(args) == 1 {
			return args[0]
		}
		sortExprs(args)
	case OpMul:
		args = flattenAC(OpMul, args)
		args = foldConsts(OpMul, 1, args)
		for _, a := range args {
			if a.Kind == ExprConst && a.Val == 0 {
				return ConstExpr(0)
			}
		}
		args = dropIdentity(args, 1)
		if len(args) == 0 {
			return ConstExpr(1)
		}
		if len(args) == 1 {
			return args[0]
		}
		sortExprs(args)
	case OpAnd:
		args = flattenAC(OpAnd, args)
		args = foldConsts(OpAnd, 0xffff, args)
		for _, a := range args {
			if a.Kind == ExprConst && a.Val == 0 {
				return ConstExpr(0)
			}
		}
		args = dropIdentity(args, 0xffff)
		args = dedupe(args)
		if len(args) == 0 {
			return ConstExpr(0xffff)
		}
		if len(args) == 1 {
			return args[0]
		}
		sortExprs(args)
	case OpOr:
		args = flattenAC(OpOr, args)
		args = foldConsts(OpOr, 0, args)
		for _, a := range args {
			if a.Kind == ExprConst && a.Val == 0xffff {
				return ConstExpr(0xffff)
			}
		}
		args = dropIdentity(args, 0)
		args = dedupe(args)
		if len(args) == 0 {
			return ConstExpr(0)
		}
		if len(args) == 1 {
			return args[0]
		}
		sortExprs(args)
	case OpXor:
		args = flattenAC(OpXor, args)
		args = foldConsts(OpXor, 0, args)
		args = dropIdentity(args, 0)
		args = cancelXorPairs(args)
		if len(args) == 0 {
			return ConstExpr(0)
		}
		if len(args) == 1 {
			return args[0]
		}
		sortExprs(args)
	case OpSMin, OpSMax, OpUMin, OpUMax:
		args = flattenAC(op, args)
		args = dedupe(args)
		if len(args) == 1 {
			return args[0]
		}
		sortExprs(args)
	case OpEq, OpNeq:
		if args[0].key == args[1].key {
			if op == OpEq {
				return ConstExpr(1)
			}
			return ConstExpr(0)
		}
		sorted := []*Expr{args[0], args[1]}
		sortExprs(sorted)
		args = sorted
	case OpShl, OpLshr, OpAshr:
		if args[1].Kind == ExprConst && args[1].Val&15 == 0 {
			return args[0]
		}
	case OpSel:
		if args[0].Kind == ExprConst {
			if args[0].Val&1 != 0 {
				return args[1]
			}
			return args[2]
		}
		if args[1].key == args[2].key {
			return args[1]
		}
	}

	e := &Expr{Kind: ExprOp, Op: op, Val: val, Kids: args}
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.key
	}
	imm := ""
	if op == OpLUT || op == OpRom {
		imm = fmt.Sprintf("/%d", val)
	}
	e.key = fmt.Sprintf("%s%s(%s)", op.Name(), imm, strings.Join(parts, ","))
	return e
}

// flattenAC splices operands of the same associative-commutative op into
// the argument list.
func flattenAC(op Op, args []*Expr) []*Expr {
	out := make([]*Expr, 0, len(args))
	for _, a := range args {
		if a.Kind == ExprOp && a.Op == op {
			out = append(out, a.Kids...)
		} else {
			out = append(out, a)
		}
	}
	return out
}

// foldConsts combines all constant operands into at most one.
func foldConsts(op Op, identity uint16, args []*Expr) []*Expr {
	acc := identity
	found := false
	out := args[:0:0]
	for _, a := range args {
		if a.Kind == ExprConst {
			acc = EvalOp(op, []uint16{acc, a.Val}, 0)
			found = true
		} else {
			out = append(out, a)
		}
	}
	if found && acc != identity {
		out = append(out, ConstExpr(acc))
	}
	return out
}

func dropIdentity(args []*Expr, identity uint16) []*Expr {
	out := args[:0:0]
	for _, a := range args {
		if a.Kind == ExprConst && a.Val == identity {
			continue
		}
		out = append(out, a)
	}
	return out
}

// cancelNegPairs removes x together with neg(x) from an add operand list.
func cancelNegPairs(args []*Expr) []*Expr {
	removed := make([]bool, len(args))
	for i := range args {
		if removed[i] {
			continue
		}
		for j := range args {
			if i == j || removed[j] {
				continue
			}
			a, b := args[i], args[j]
			if b.Kind == ExprOp && b.Op == OpNeg && b.Kids[0].key == a.key {
				removed[i], removed[j] = true, true
				break
			}
		}
	}
	out := args[:0:0]
	for i, a := range args {
		if !removed[i] {
			out = append(out, a)
		}
	}
	return out
}

// cancelXorPairs removes pairs of identical operands from an xor list.
func cancelXorPairs(args []*Expr) []*Expr {
	counts := make(map[string]int)
	for _, a := range args {
		counts[a.key]++
	}
	out := args[:0:0]
	emitted := make(map[string]int)
	for _, a := range args {
		if counts[a.key]%2 == 1 && emitted[a.key] == 0 {
			out = append(out, a)
			emitted[a.key] = 1
		}
	}
	return out
}

// dedupe keeps one copy of each distinct operand (idempotent ops).
func dedupe(args []*Expr) []*Expr {
	seen := make(map[string]bool)
	out := args[:0:0]
	for _, a := range args {
		if !seen[a.key] {
			seen[a.key] = true
			out = append(out, a)
		}
	}
	return out
}

func sortExprs(args []*Expr) {
	sort.Slice(args, func(i, j int) bool { return args[i].key < args[j].key })
}

// EvalExpr evaluates a symbolic expression under a variable binding.
func EvalExpr(e *Expr, env map[string]uint16) uint16 {
	switch e.Kind {
	case ExprVar:
		return env[e.Name]
	case ExprConst:
		return e.Val
	default:
		// N-ary flattened AC ops are evaluated by left fold; all our AC
		// ops are associative so the fold order does not matter.
		if len(e.Kids) > e.Op.Arity() && e.Op.Arity() == 2 {
			acc := EvalExpr(e.Kids[0], env)
			for _, k := range e.Kids[1:] {
				acc = EvalOp(e.Op, []uint16{acc, EvalExpr(k, env)}, e.Val)
			}
			return acc
		}
		args := make([]uint16, len(e.Kids))
		for i, k := range e.Kids {
			args[i] = EvalExpr(k, env)
		}
		return EvalOp(e.Op, args, e.Val)
	}
}

// Vars returns the sorted set of variable names appearing in e.
func (e *Expr) Vars() []string {
	set := make(map[string]bool)
	var walk func(*Expr)
	walk = func(x *Expr) {
		if x.Kind == ExprVar {
			set[x.Name] = true
		}
		for _, k := range x.Kids {
			walk(k)
		}
	}
	walk(e)
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SymbolicEval computes the canonical symbolic expression of every output
// of the graph, with input nodes as variables (named by their IO name).
// Registers, memories and FIFOs are transparent, matching Eval.
func (g *Graph) SymbolicEval() (map[string]*Expr, error) {
	order, err := g.topoOrder()
	if err != nil {
		return nil, err
	}
	exprs := make([]*Expr, len(g.Nodes))
	outs := make(map[string]*Expr)
	for _, v := range order {
		n := &g.Nodes[v]
		switch n.Op {
		case OpInput, OpInputB:
			exprs[v] = Var(n.Name)
		case OpConst, OpConstB:
			exprs[v] = ConstExpr(n.Val)
		case OpOutput:
			exprs[v] = exprs[n.Args[0]]
			outs[n.Name] = exprs[v]
		case OpReg, OpMem, OpRegFileFIFO:
			exprs[v] = exprs[n.Args[0]]
		default:
			args := make([]*Expr, len(n.Args))
			for i, a := range n.Args {
				args[i] = exprs[a]
			}
			exprs[v] = Apply(n.Op, n.Val, args...)
		}
	}
	return outs, nil
}
