package ir

// EvalOp computes a single op on already-evaluated operands. Words are
// uint16; 1-bit values are represented as 0/1. val is the node's immediate
// (constant value, LUT table, ROM table id). EvalOp is total: an op it does
// not model evaluates to 0, so a malformed node cannot crash a simulation —
// Graph.Validate is the place where unknown ops are rejected with an error.
func EvalOp(op Op, args []uint16, val uint16) uint16 {
	bit := func(b bool) uint16 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case OpConst, OpConstB:
		return val
	case OpAdd:
		return args[0] + args[1]
	case OpSub:
		return args[0] - args[1]
	case OpMul:
		return args[0] * args[1]
	case OpNeg:
		return -args[0]
	case OpAbs:
		v := int16(args[0])
		if v < 0 {
			v = -v
		}
		return uint16(v)
	case OpShl:
		return args[0] << (args[1] & 15)
	case OpLshr:
		return args[0] >> (args[1] & 15)
	case OpAshr:
		return uint16(int16(args[0]) >> (args[1] & 15))
	case OpAnd:
		return args[0] & args[1]
	case OpOr:
		return args[0] | args[1]
	case OpXor:
		return args[0] ^ args[1]
	case OpNot:
		return ^args[0]
	case OpSMin:
		if int16(args[0]) < int16(args[1]) {
			return args[0]
		}
		return args[1]
	case OpSMax:
		if int16(args[0]) > int16(args[1]) {
			return args[0]
		}
		return args[1]
	case OpUMin:
		if args[0] < args[1] {
			return args[0]
		}
		return args[1]
	case OpUMax:
		if args[0] > args[1] {
			return args[0]
		}
		return args[1]
	case OpEq:
		return bit(args[0] == args[1])
	case OpNeq:
		return bit(args[0] != args[1])
	case OpSlt:
		return bit(int16(args[0]) < int16(args[1]))
	case OpSle:
		return bit(int16(args[0]) <= int16(args[1]))
	case OpSgt:
		return bit(int16(args[0]) > int16(args[1]))
	case OpSge:
		return bit(int16(args[0]) >= int16(args[1]))
	case OpUlt:
		return bit(args[0] < args[1])
	case OpUle:
		return bit(args[0] <= args[1])
	case OpUgt:
		return bit(args[0] > args[1])
	case OpUge:
		return bit(args[0] >= args[1])
	case OpSel:
		if args[0]&1 != 0 {
			return args[1]
		}
		return args[2]
	case OpLUT:
		idx := (args[0]&1)<<2 | (args[1]&1)<<1 | (args[2] & 1)
		return (val >> idx) & 1
	case OpRom:
		return romValue(val, args[0])
	case OpReg, OpRegFileFIFO, OpMem:
		// Transparent in combinational evaluation; Simulate models delay.
		return args[0]
	default:
		return 0
	}
}

// romValue produces deterministic pseudo-contents for ROM table tableID at
// the given address: a cheap integer hash, stable across runs.
func romValue(tableID, addr uint16) uint16 {
	x := uint32(tableID)*2654435761 + uint32(addr)*40503
	x ^= x >> 13
	x *= 2246822519
	x ^= x >> 11
	return uint16(x)
}

// Eval evaluates the graph combinationally: registers, FIFOs and memories
// are transparent (zero-delay). Inputs are bound by name; missing inputs
// default to zero. The result maps output names to values.
func (g *Graph) Eval(inputs map[string]uint16) (map[string]uint16, error) {
	if g.err != nil {
		return nil, g.err
	}
	order, err := g.topoOrder()
	if err != nil {
		return nil, err
	}
	vals := make([]uint16, len(g.Nodes))
	outs := make(map[string]uint16)
	for _, v := range order {
		n := &g.Nodes[v]
		switch n.Op {
		case OpInput, OpInputB:
			vals[v] = inputs[n.Name]
			if n.Op == OpInputB {
				vals[v] &= 1
			}
		case OpOutput:
			vals[v] = vals[n.Args[0]]
			outs[n.Name] = vals[v]
		default:
			args := make([]uint16, len(n.Args))
			for i, a := range n.Args {
				args[i] = vals[a]
			}
			vals[v] = EvalOp(n.Op, args, n.Val)
		}
	}
	return outs, nil
}

// Latency returns the sequential delay (in cycles) contributed by a node:
// 1 for registers and memories, the FIFO depth for register files, 0 for
// everything else.
func (n *Node) Latency() int {
	switch n.Op {
	case OpReg, OpMem:
		return 1
	case OpRegFileFIFO:
		return int(n.Val)
	default:
		return 0
	}
}

// Simulate runs a cycle-accurate simulation for the given number of
// cycles. inputs[name][t] is the value of that input at cycle t (the last
// value is held if the stream is shorter than cycles). Registers delay by
// one cycle, memories by one cycle, register-file FIFOs by their depth.
// The result maps each output name to its per-cycle value trace.
func (g *Graph) Simulate(inputs map[string][]uint16, cycles int) (map[string][]uint16, error) {
	if g.err != nil {
		return nil, g.err
	}
	order, err := g.topoOrder()
	if err != nil {
		return nil, err
	}
	// Per-node delay lines: state[v] holds the last Latency() values.
	state := make([][]uint16, len(g.Nodes))
	for v := range g.Nodes {
		if l := g.Nodes[v].Latency(); l > 0 {
			state[v] = make([]uint16, l)
		}
	}
	vals := make([]uint16, len(g.Nodes))
	outs := make(map[string][]uint16)
	for i := range g.Nodes {
		if g.Nodes[i].Op == OpOutput {
			outs[g.Nodes[i].Name] = make([]uint16, 0, cycles)
		}
	}
	at := func(stream []uint16, t int) uint16 {
		if len(stream) == 0 {
			return 0
		}
		if t >= len(stream) {
			return stream[len(stream)-1]
		}
		return stream[t]
	}
	for t := 0; t < cycles; t++ {
		for _, v := range order {
			n := &g.Nodes[v]
			switch n.Op {
			case OpInput, OpInputB:
				vals[v] = at(inputs[n.Name], t)
				if n.Op == OpInputB {
					vals[v] &= 1
				}
			case OpOutput:
				vals[v] = vals[n.Args[0]]
			case OpReg, OpMem, OpRegFileFIFO:
				// Output the oldest stored value, then shift in the new one.
				line := state[v]
				out := line[0]
				copy(line, line[1:])
				line[len(line)-1] = vals[n.Args[0]]
				vals[v] = out
			default:
				args := make([]uint16, len(n.Args))
				for i, a := range n.Args {
					args[i] = vals[a]
				}
				vals[v] = EvalOp(n.Op, args, n.Val)
			}
		}
		for i := range g.Nodes {
			if g.Nodes[i].Op == OpOutput {
				outs[g.Nodes[i].Name] = append(outs[g.Nodes[i].Name], vals[i])
			}
		}
	}
	return outs, nil
}

// TotalLatency returns the maximum sequential latency (in cycles) along
// any input-to-output path.
func (g *Graph) TotalLatency() (int, error) {
	order, err := g.topoOrder()
	if err != nil {
		return 0, err
	}
	lat := make([]int, len(g.Nodes))
	maxLat := 0
	for _, v := range order {
		n := &g.Nodes[v]
		in := 0
		for _, a := range n.Args {
			if lat[a] > in {
				in = lat[a]
			}
		}
		lat[v] = in + n.Latency()
		if lat[v] > maxLat {
			maxLat = lat[v]
		}
	}
	return maxLat, nil
}
