package ir

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/graph"
)

// buildMAC constructs out = a*b + c.
func buildMAC() *Graph {
	g := NewGraph("mac")
	a := g.Input("a")
	b := g.Input("b")
	c := g.Input("c")
	m := g.OpNode(OpMul, a, b)
	s := g.OpNode(OpAdd, m, c)
	g.Output("out", s)
	return g
}

func TestBuildAndValidate(t *testing.T) {
	g := buildMAC()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.NumNodes(); got != 6 {
		t.Errorf("NumNodes = %d, want 6", got)
	}
	if n := g.ComputeNodeCount(); n != 2 {
		t.Errorf("compute nodes = %d, want 2", n)
	}
	if len(g.Inputs()) != 3 || len(g.Outputs()) != 1 {
		t.Errorf("IO counts wrong: %d in, %d out", len(g.Inputs()), len(g.Outputs()))
	}
}

func TestValidateCatchesBadArity(t *testing.T) {
	g := NewGraph("bad")
	a := g.Input("a")
	g.Nodes = append(g.Nodes, Node{Op: OpAdd, Args: []NodeRef{a}}) // 1 arg to add
	if err := g.Validate(); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestValidateCatchesBadRef(t *testing.T) {
	g := NewGraph("bad")
	g.Nodes = append(g.Nodes, Node{Op: OpNeg, Args: []NodeRef{5}})
	if err := g.Validate(); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	g := NewGraph("cyc")
	g.Nodes = append(g.Nodes, Node{Op: OpNeg, Args: []NodeRef{1}})
	g.Nodes = append(g.Nodes, Node{Op: OpNeg, Args: []NodeRef{0}})
	if err := g.Validate(); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestOpNodeRecordsArityError(t *testing.T) {
	g := NewGraph("x")
	a := g.Input("a")
	g.OpNode(OpAdd, a)
	if !errors.Is(g.Err(), fault.ErrInvariant) {
		t.Fatalf("Err() = %v, want ErrInvariant", g.Err())
	}
	if err := g.Validate(); !errors.Is(err, fault.ErrInvariant) {
		t.Fatalf("Validate() = %v, want sticky ErrInvariant", err)
	}
	if _, err := g.Eval(nil); !errors.Is(err, fault.ErrInvariant) {
		t.Fatalf("Eval() = %v, want sticky ErrInvariant", err)
	}
	if !errors.Is(g.Clone().Err(), fault.ErrInvariant) {
		t.Fatal("Clone dropped the sticky error")
	}
}

func TestEvalMAC(t *testing.T) {
	g := buildMAC()
	out, err := g.Eval(map[string]uint16{"a": 3, "b": 7, "c": 10})
	if err != nil {
		t.Fatal(err)
	}
	if out["out"] != 31 {
		t.Errorf("3*7+10 = %d, want 31", out["out"])
	}
}

func TestEvalWrapsAround(t *testing.T) {
	g := NewGraph("wrap")
	a := g.Input("a")
	b := g.Input("b")
	g.Output("s", g.OpNode(OpAdd, a, b))
	out, err := g.Eval(map[string]uint16{"a": 0xffff, "b": 2})
	if err != nil {
		t.Fatal(err)
	}
	if out["s"] != 1 {
		t.Errorf("0xffff+2 = %d, want 1 (mod 2^16)", out["s"])
	}
}

func TestEvalSelAndLUT(t *testing.T) {
	g := NewGraph("sel")
	c := g.InputB("c")
	a := g.Input("a")
	b := g.Input("b")
	g.Output("o", g.OpNode(OpSel, c, a, b))
	// LUT implementing majority(c, x, y): table bit i set when
	// popcount(i) >= 2 for i = c<<2|x<<1|y.
	x := g.InputB("x")
	y := g.InputB("y")
	g.Output("m", g.LUT(0b11101000, c, x, y))

	out, _ := g.Eval(map[string]uint16{"c": 1, "a": 5, "b": 9, "x": 0, "y": 1})
	if out["o"] != 5 {
		t.Errorf("sel(1,5,9) = %d, want 5", out["o"])
	}
	if out["m"] != 1 {
		t.Errorf("majority(1,0,1) = %d, want 1", out["m"])
	}
	out, _ = g.Eval(map[string]uint16{"c": 0, "a": 5, "b": 9, "x": 0, "y": 1})
	if out["o"] != 9 {
		t.Errorf("sel(0,5,9) = %d, want 9", out["o"])
	}
	if out["m"] != 0 {
		t.Errorf("majority(0,0,1) = %d, want 0", out["m"])
	}
}

func TestEvalSignedOps(t *testing.T) {
	g := NewGraph("signed")
	a := g.Input("a")
	b := g.Input("b")
	g.Output("min", g.OpNode(OpSMin, a, b))
	g.Output("abs", g.OpNode(OpAbs, a))
	g.Output("asr", g.OpNode(OpAshr, a, b))
	g.Output("lt", g.OpNode(OpSlt, a, b))

	neg5 := uint16(0xfffb) // -5
	out, _ := g.Eval(map[string]uint16{"a": neg5, "b": 2})
	if out["min"] != neg5 {
		t.Errorf("smin(-5,2) = %#x, want -5", out["min"])
	}
	if out["abs"] != 5 {
		t.Errorf("abs(-5) = %d, want 5", out["abs"])
	}
	if int16(out["asr"]) != -2 {
		t.Errorf("ashr(-5,2) = %d, want -2", int16(out["asr"]))
	}
	if out["lt"] != 1 {
		t.Errorf("slt(-5,2) = %d, want 1", out["lt"])
	}
}

func TestToLabeledRoundTrip(t *testing.T) {
	g := buildMAC()
	lg, _ := g.ToLabeled()
	if lg.NumNodes() != g.NumNodes() {
		t.Fatalf("labeled nodes = %d, want %d", lg.NumNodes(), g.NumNodes())
	}
	counts := lg.LabelCounts()
	if counts["mul"] != 1 || counts["add"] != 1 || counts["input"] != 3 {
		t.Errorf("label counts wrong: %v", counts)
	}
}

func TestToLabeledCollapsesCommutativePorts(t *testing.T) {
	g := buildMAC()
	lg, _ := g.ToLabeled()
	for _, e := range lg.Edges() {
		if lg.Label(e.To) == "add" || lg.Label(e.To) == "mul" {
			if e.Port != 0 {
				t.Errorf("commutative consumer edge has port %d, want 0", e.Port)
			}
		}
	}
}

func TestToLabeledKeepsNonCommutativePorts(t *testing.T) {
	g := NewGraph("shift")
	a := g.Input("a")
	b := g.Input("b")
	g.Output("o", g.OpNode(OpShl, a, b))
	lg, _ := g.ToLabeled()
	ports := map[int]bool{}
	for _, e := range lg.Edges() {
		if lg.Label(e.To) == "shl" {
			ports[e.Port] = true
		}
	}
	if !ports[0] || !ports[1] {
		t.Errorf("shl ports collapsed: %v", ports)
	}
}

func TestFromLabeledMulAdd(t *testing.T) {
	p := graph.New()
	m := p.AddNode("mul")
	a := p.AddNode("add")
	p.AddEdge(m, a, 0)
	g, err := FromLabeled(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := g.CountOps()
	if counts[OpMul] != 1 || counts[OpAdd] != 1 {
		t.Errorf("ops wrong: %v", counts)
	}
	// mul needs 2 inputs, add needs 1 more (one comes from mul) = 3.
	if counts[OpInput] != 3 {
		t.Errorf("pattern inputs = %d, want 3", counts[OpInput])
	}
	if counts[OpOutput] != 1 {
		t.Errorf("pattern outputs = %d, want 1", counts[OpOutput])
	}
	// Semantics: out = pin_a * pin_b + pin_c for some input naming.
	out, err := g.Eval(map[string]uint16{"pin0": 3, "pin1": 4, "pin2": 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v != 17 {
			t.Errorf("mul-add pattern eval = %d, want 17", v)
		}
	}
}

func TestFromLabeledRejectsUnknownLabel(t *testing.T) {
	p := graph.New()
	p.AddNode("frobnicate")
	if _, err := FromLabeled(p); err == nil {
		t.Fatal("expected unknown-label error")
	}
}

func TestFromLabeledSelGetsBitInput(t *testing.T) {
	p := graph.New()
	p.AddNode("sel")
	g, err := FromLabeled(p)
	if err != nil {
		t.Fatal(err)
	}
	counts := g.CountOps()
	if counts[OpInputB] != 1 {
		t.Errorf("sel pattern should get 1 bit input, got %d", counts[OpInputB])
	}
	if counts[OpInput] != 2 {
		t.Errorf("sel pattern should get 2 word inputs, got %d", counts[OpInput])
	}
}

func TestRoundTripIsomorphism(t *testing.T) {
	// IR -> labeled -> IR -> labeled must be isomorphic to the first
	// labeled graph (modulo added inputs when the compute pattern had
	// dangling operands — here it does not, so node counts match).
	g := buildMAC()
	lg, _ := g.ToLabeled()
	g2, err := FromLabeled(lg)
	if err != nil {
		t.Fatal(err)
	}
	lg2, _ := g2.ToLabeled()
	if !graph.Isomorphic(lg, lg2) {
		t.Fatalf("round trip not isomorphic:\n%s\n%s", lg, lg2)
	}
}
