package ir

import (
	"math/rand"
	"testing"
)

func TestSimulateRegisterDelaysByOne(t *testing.T) {
	g := NewGraph("delay")
	a := g.Input("a")
	g.Output("o", g.Reg(a))
	stream := []uint16{1, 2, 3, 4, 5}
	outs, err := g.Simulate(map[string][]uint16{"a": stream}, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint16{0, 1, 2, 3, 4}
	for i, v := range outs["o"] {
		if v != want[i] {
			t.Fatalf("reg trace = %v, want %v", outs["o"], want)
		}
	}
}

func TestSimulateFIFODepth3(t *testing.T) {
	g := NewGraph("fifo")
	a := g.Input("a")
	g.Output("o", g.RegFileFIFO(a, 3))
	stream := []uint16{10, 20, 30, 40, 50, 60}
	outs, err := g.Simulate(map[string][]uint16{"a": stream}, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint16{0, 0, 0, 10, 20, 30}
	for i, v := range outs["o"] {
		if v != want[i] {
			t.Fatalf("fifo trace = %v, want %v", outs["o"], want)
		}
	}
}

func TestSimulateSteadyStateMatchesEval(t *testing.T) {
	// A pipelined graph fed constant inputs must, after the pipeline
	// fills, produce exactly the combinational Eval result. This is the
	// core equivalence the CGRA simulator validation relies on.
	g := NewGraph("pipe")
	a := g.Input("a")
	b := g.Input("b")
	m := g.Reg(g.OpNode(OpMul, a, b))
	s := g.OpNode(OpAdd, m, g.Reg(g.Reg(a)))
	g.Output("o", g.Reg(s))

	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		env := map[string]uint16{
			"a": uint16(rng.Intn(1 << 16)),
			"b": uint16(rng.Intn(1 << 16)),
		}
		comb, err := g.Eval(env)
		if err != nil {
			t.Fatal(err)
		}
		lat, err := g.TotalLatency()
		if err != nil {
			t.Fatal(err)
		}
		streams := map[string][]uint16{
			"a": {env["a"]},
			"b": {env["b"]},
		}
		trace, err := g.Simulate(streams, lat+4)
		if err != nil {
			t.Fatal(err)
		}
		got := trace["o"][len(trace["o"])-1]
		if got != comb["o"] {
			t.Fatalf("steady state %d != combinational %d", got, comb["o"])
		}
	}
}

func TestTotalLatency(t *testing.T) {
	g := NewGraph("lat")
	a := g.Input("a")
	path1 := g.Reg(g.Reg(a))           // 2 cycles
	path2 := g.RegFileFIFO(a, 5)       // 5 cycles
	s := g.OpNode(OpAdd, path1, path2) // 0
	g.Output("o", g.Reg(s))            // +1
	lat, err := g.TotalLatency()
	if err != nil {
		t.Fatal(err)
	}
	if lat != 6 {
		t.Errorf("TotalLatency = %d, want 6", lat)
	}
}

func TestRomDeterministic(t *testing.T) {
	g := NewGraph("rom")
	a := g.Input("a")
	g.Output("o", g.Rom(a, 7))
	o1, _ := g.Eval(map[string]uint16{"a": 42})
	o2, _ := g.Eval(map[string]uint16{"a": 42})
	if o1["o"] != o2["o"] {
		t.Error("ROM not deterministic")
	}
	o3, _ := g.Eval(map[string]uint16{"a": 43})
	if o1["o"] == o3["o"] {
		t.Log("note: adjacent ROM addresses collide (allowed but unexpected)")
	}
}

func TestEvalOpAllComputeOpsTotal(t *testing.T) {
	// Every compute op must evaluate without panicking on arbitrary args.
	rng := rand.New(rand.NewSource(5))
	for _, op := range AllComputeOps() {
		args := make([]uint16, op.Arity())
		for trial := 0; trial < 20; trial++ {
			for i := range args {
				args[i] = uint16(rng.Intn(1 << 16))
			}
			EvalOp(op, args, uint16(rng.Intn(256)))
		}
	}
}

func TestBaselineALUOpsAllCompute(t *testing.T) {
	for _, op := range BaselineALUOps() {
		if !op.IsCompute() {
			t.Errorf("%s in baseline set but not compute", op)
		}
	}
	if len(BaselineALUOps()) < 20 {
		t.Errorf("baseline ALU implausibly small: %d ops", len(BaselineALUOps()))
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for _, op := range AllComputeOps() {
		if got := OpByName(op.Name()); got != op {
			t.Errorf("OpByName(%q) = %v, want %v", op.Name(), got, op)
		}
	}
	if OpByName("nonsense") != OpInvalid {
		t.Error("unknown name did not map to OpInvalid")
	}
}

func TestHWClasses(t *testing.T) {
	if OpAdd.HWClass() != OpSub.HWClass() {
		t.Error("add and sub should share the addsub block")
	}
	if OpAdd.HWClass() == OpMul.HWClass() {
		t.Error("add and mul must not share a block")
	}
	if OpSlt.HWClass() != OpUge.HWClass() {
		t.Error("comparisons should share the cmp block")
	}
}
