// Package ir implements the word-level dataflow intermediate representation
// that plays the role CoreIR plays in the APEX paper: the exchange format
// between the application frontend, the frequent-subgraph miner, the
// datapath merger, the rewrite-rule synthesizer, the application mapper,
// and the hardware generator.
//
// Graphs operate on a 16-bit datapath with 1-bit predicates, matching the
// CGRA fabric in the paper (16-bit routing tracks, 1-bit control tracks).
// Signed operations interpret words as two's-complement int16.
package ir

// Op enumerates the primitive operations of the IR. The compute subset
// (IsCompute) is what the subgraph miner sees; structural ops (inputs,
// outputs, constants, registers, memories) shape the graph but are not
// mined into PE operations by themselves — constants participate as leaf
// nodes that become PE constant registers.
type Op uint8

const (
	OpInvalid Op = iota

	// Structural
	OpInput       // named 16-bit stream input
	OpInputB      // named 1-bit stream input
	OpOutput      // named output; Args[0] is the value
	OpConst       // 16-bit constant; value in Node.Val
	OpConstB      // 1-bit constant; value in Node.Val (0 or 1)
	OpReg         // single-cycle pipeline register
	OpRegFileFIFO // register file used as FIFO; depth in Node.Val
	OpMem         // memory tile access (line buffer); latency 1
	OpRom         // constant table lookup; Args[0] = address

	// Arithmetic (16-bit)
	OpAdd
	OpSub
	OpMul
	OpNeg
	OpAbs

	// Shifts (16-bit; shift amount is Args[1] & 15)
	OpShl
	OpLshr
	OpAshr

	// Bitwise (16-bit)
	OpAnd
	OpOr
	OpXor
	OpNot

	// Min/max (16-bit)
	OpSMin
	OpSMax
	OpUMin
	OpUMax

	// Comparisons (16-bit inputs, 1-bit result)
	OpEq
	OpNeq
	OpSlt
	OpSle
	OpSgt
	OpSge
	OpUlt
	OpUle
	OpUgt
	OpUge

	// Select: Args = [cond(1b), a, b]; out = cond ? a : b
	OpSel

	// LUT: three 1-bit inputs indexing an 8-bit truth table in Node.Val.
	OpLUT

	opMax // sentinel
)

// opInfo captures static metadata for each op.
type opInfo struct {
	name        string
	arity       int  // -1 = variable (outputs have 1, inputs 0)
	commutative bool // first two data operands may swap without changing meaning
	bitResult   bool // produces a 1-bit value
	compute     bool // eligible for subgraph mining / PE implementation
	hwClass     string
}

var opTable = map[Op]opInfo{
	OpInvalid:     {name: "invalid"},
	OpInput:       {name: "input", arity: 0},
	OpInputB:      {name: "inputb", arity: 0, bitResult: true},
	OpOutput:      {name: "output", arity: 1},
	OpConst:       {name: "const", arity: 0},
	OpConstB:      {name: "constb", arity: 0, bitResult: true},
	OpReg:         {name: "reg", arity: 1},
	OpRegFileFIFO: {name: "regfile", arity: 1},
	OpMem:         {name: "mem", arity: 1},
	OpRom:         {name: "rom", arity: 1},

	OpAdd: {name: "add", arity: 2, commutative: true, compute: true, hwClass: "addsub"},
	OpSub: {name: "sub", arity: 2, compute: true, hwClass: "addsub"},
	OpMul: {name: "mul", arity: 2, commutative: true, compute: true, hwClass: "mul"},
	OpNeg: {name: "neg", arity: 1, compute: true, hwClass: "addsub"},
	OpAbs: {name: "abs", arity: 1, compute: true, hwClass: "abs"},

	OpShl:  {name: "shl", arity: 2, compute: true, hwClass: "shift"},
	OpLshr: {name: "lshr", arity: 2, compute: true, hwClass: "shift"},
	OpAshr: {name: "ashr", arity: 2, compute: true, hwClass: "shift"},

	OpAnd: {name: "and", arity: 2, commutative: true, compute: true, hwClass: "logic"},
	OpOr:  {name: "or", arity: 2, commutative: true, compute: true, hwClass: "logic"},
	OpXor: {name: "xor", arity: 2, commutative: true, compute: true, hwClass: "logic"},
	OpNot: {name: "not", arity: 1, compute: true, hwClass: "logic"},

	OpSMin: {name: "smin", arity: 2, commutative: true, compute: true, hwClass: "minmax"},
	OpSMax: {name: "smax", arity: 2, commutative: true, compute: true, hwClass: "minmax"},
	OpUMin: {name: "umin", arity: 2, commutative: true, compute: true, hwClass: "minmax"},
	OpUMax: {name: "umax", arity: 2, commutative: true, compute: true, hwClass: "minmax"},

	OpEq:  {name: "eq", arity: 2, commutative: true, bitResult: true, compute: true, hwClass: "cmp"},
	OpNeq: {name: "neq", arity: 2, commutative: true, bitResult: true, compute: true, hwClass: "cmp"},
	OpSlt: {name: "slt", arity: 2, bitResult: true, compute: true, hwClass: "cmp"},
	OpSle: {name: "sle", arity: 2, bitResult: true, compute: true, hwClass: "cmp"},
	OpSgt: {name: "sgt", arity: 2, bitResult: true, compute: true, hwClass: "cmp"},
	OpSge: {name: "sge", arity: 2, bitResult: true, compute: true, hwClass: "cmp"},
	OpUlt: {name: "ult", arity: 2, bitResult: true, compute: true, hwClass: "cmp"},
	OpUle: {name: "ule", arity: 2, bitResult: true, compute: true, hwClass: "cmp"},
	OpUgt: {name: "ugt", arity: 2, bitResult: true, compute: true, hwClass: "cmp"},
	OpUge: {name: "uge", arity: 2, bitResult: true, compute: true, hwClass: "cmp"},

	OpSel: {name: "sel", arity: 3, compute: true, hwClass: "sel"},
	OpLUT: {name: "lut", arity: 3, bitResult: true, compute: true, hwClass: "lut"},
}

// Name returns the mining label of the op (stable, lowercase).
func (op Op) Name() string { return opTable[op].name }

// Arity returns the operand count of the op.
func (op Op) Arity() int { return opTable[op].arity }

// Commutative reports whether the op's first two data operands commute.
func (op Op) Commutative() bool { return opTable[op].commutative }

// BitResult reports whether the op produces a 1-bit value.
func (op Op) BitResult() bool { return opTable[op].bitResult }

// IsCompute reports whether the op is a minable compute operation.
func (op Op) IsCompute() bool { return opTable[op].compute }

// HWClass names the hardware block family that implements the op. Two ops
// in the same class can be merged onto one functional unit by the datapath
// merger (e.g. add and sub share an adder/subtractor).
func (op Op) HWClass() string { return opTable[op].hwClass }

// IsStructural reports whether the op is a non-compute structural node.
func (op Op) IsStructural() bool {
	return op != OpInvalid && !opTable[op].compute
}

func (op Op) String() string { return op.Name() }

var opByName = func() map[string]Op {
	m := make(map[string]Op, len(opTable))
	for op, info := range opTable {
		m[info.name] = op
	}
	return m
}()

// OpByName resolves a mining label back to an Op; OpInvalid if unknown.
func OpByName(name string) Op {
	return opByName[name]
}

// AllComputeOps returns every minable compute op in a stable order.
func AllComputeOps() []Op {
	var ops []Op
	for op := Op(1); op < opMax; op++ {
		if info, ok := opTable[op]; ok && info.compute {
			ops = append(ops, op)
		}
	}
	return ops
}

// BaselineALUOps is the operation set of the paper's baseline PE (Fig. 1):
// a general integer ALU with a multiplier, shifter, comparisons, min/max,
// absolute value, select, bitwise logic and a LUT for bit operations.
func BaselineALUOps() []Op {
	return []Op{
		OpAdd, OpSub, OpMul, OpNeg, OpAbs,
		OpShl, OpLshr, OpAshr,
		OpAnd, OpOr, OpXor, OpNot,
		OpSMin, OpSMax, OpUMin, OpUMax,
		OpEq, OpNeq, OpSlt, OpSle, OpSgt, OpSge, OpUlt, OpUle, OpUgt, OpUge,
		OpSel, OpLUT,
	}
}
