package ir

import (
	"fmt"
	"strings"
)

// DOT renders the dataflow graph in Graphviz syntax: compute nodes as
// boxes labeled with their op, constants as diamonds with their value,
// I/O as ellipses with their names, and memory elements as cylinders.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", g.Name)
	for i, n := range g.Nodes {
		var label, shape string
		switch n.Op {
		case OpInput, OpInputB:
			label, shape = n.Name, "ellipse"
		case OpOutput:
			label, shape = n.Name, "doubleoctagon"
		case OpConst, OpConstB:
			label, shape = fmt.Sprintf("%d", n.Val), "diamond"
		case OpReg:
			label, shape = "reg", "cylinder"
		case OpMem:
			label, shape = "mem", "cylinder"
		case OpRegFileFIFO:
			label, shape = fmt.Sprintf("rf[%d]", n.Val), "cylinder"
		case OpRom:
			label, shape = fmt.Sprintf("rom%d", n.Val), "cylinder"
		case OpLUT:
			label, shape = fmt.Sprintf("lut %#02x", n.Val), "box"
		default:
			label, shape = n.Op.Name(), "box"
		}
		fmt.Fprintf(&b, "  n%d [label=%q, shape=%s];\n", i, label, shape)
	}
	for i, n := range g.Nodes {
		for p, a := range n.Args {
			if len(n.Args) > 1 {
				fmt.Fprintf(&b, "  n%d -> n%d [label=\"%d\"];\n", a, i, p)
			} else {
				fmt.Fprintf(&b, "  n%d -> n%d;\n", a, i)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
