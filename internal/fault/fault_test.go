package fault

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestClassification(t *testing.T) {
	cases := []struct {
		err      error
		sentinel error
	}{
		{Invariantf("bad node %d", 7), ErrInvariant},
		{NonConvergencef("no route"), ErrNonConvergence},
		{Capacityf("too many PEs"), ErrCapacity},
		{Injectedf("test fault"), ErrInjected},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.sentinel) {
			t.Errorf("%v does not match its sentinel %v", c.err, c.sentinel)
		}
		for _, other := range []error{ErrInvariant, ErrNonConvergence, ErrCapacity, ErrInjected, ErrCanceled} {
			if other != c.sentinel && errors.Is(c.err, other) {
				t.Errorf("%v wrongly matches %v", c.err, other)
			}
		}
	}
}

func TestWrappingKeepsClassification(t *testing.T) {
	err := fmt.Errorf("cell camera|pe_ip: %w", NonConvergencef("routing did not converge in 24 iterations"))
	if !errors.Is(err, ErrNonConvergence) {
		t.Fatalf("wrapped error lost its classification: %v", err)
	}
}

func TestCanceled(t *testing.T) {
	if err := Canceled(context.Background()); err != nil {
		t.Fatalf("live context reported canceled: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Canceled(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled context not classified: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cause context.Canceled not preserved: %v", err)
	}
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	<-dctx.Done()
	derr := Canceled(dctx)
	if !errors.Is(derr, ErrCanceled) || !errors.Is(derr, context.DeadlineExceeded) {
		t.Fatalf("deadline error not classified as canceled+deadline: %v", derr)
	}
}

func TestGuardConvertsPanics(t *testing.T) {
	err := Guard("worker 3", func() error { panic("boom") })
	if !errors.Is(err, ErrInvariant) {
		t.Fatalf("string panic not classified invariant: %v", err)
	}
	if !strings.Contains(err.Error(), "worker 3") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panic context lost: %v", err)
	}

	err = Guard("worker", func() error { panic(Injectedf("planned")) })
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("typed panic lost its classification: %v", err)
	}
	if errors.Is(err, ErrInvariant) {
		t.Fatalf("injected panic wrongly classified invariant: %v", err)
	}

	err = Guard("worker", func() error { return nil })
	if err != nil {
		t.Fatalf("clean run returned %v", err)
	}

	sentinel := errors.New("ordinary")
	err = Guard("worker", func() error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("ordinary error not passed through: %v", err)
	}
}
