// Package fault defines the failure taxonomy of the evaluation
// pipeline: typed sentinel errors that every layer (graph algorithms,
// IR construction, technology model, placement, routing, simulation,
// the evaluation harness) uses instead of panicking, plus the helpers
// that convert context cancellation and recovered panics into those
// typed errors.
//
// The taxonomy drives the harness's fault-tolerance policy:
//
//   - ErrNonConvergence — an iterative solver ran out of budget
//     (e.g. negotiated-congestion routing). Retryable: the caller may
//     reseed and escalate effort, then degrade to an analytical
//     estimate.
//   - ErrCapacity — the design structurally exceeds a resource bound
//     (more PEs than tiles). Not retryable, but degradable.
//   - ErrCanceled — the surrounding context was canceled or timed out.
//     Neither retryable nor degradable; the cell is abandoned.
//   - ErrInvariant — a library invariant was violated (out-of-range
//     node, unknown primitive, arity mismatch, recovered panic). A bug,
//     surfaced as a per-cell error instead of a process crash.
//   - ErrInjected — a deterministic test fault (see eval.FaultPlan).
//
// fault sits at the bottom of the stack: it imports only the standard
// library and the (equally leaf-like) obs package, so any layer can
// depend on it without cycles. Cancellation polls are counted in the
// run's metrics registry (sched.cancel.polls) when one is attached to
// the context.
package fault

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/obs"
)

// Sentinel errors classifying every failure the pipeline can produce.
// Match with errors.Is; the helpers below attach human-readable detail.
var (
	ErrInvariant      = errors.New("invariant violation")
	ErrNonConvergence = errors.New("non-convergence")
	ErrCanceled       = errors.New("canceled")
	ErrCapacity       = errors.New("capacity exceeded")
	ErrInjected       = errors.New("injected fault")
)

// tagged attaches a classification sentinel to a detailed message.
// errors.Is matches both the sentinel and, via cause, anything the
// original error chain matched.
type tagged struct {
	sentinel error
	msg      string
	cause    error // optional underlying error, kept for Is/As
}

func (e *tagged) Error() string { return e.msg }

func (e *tagged) Is(target error) bool { return target == e.sentinel }

func (e *tagged) Unwrap() error { return e.cause }

// Invariantf returns an ErrInvariant-classified error.
func Invariantf(format string, args ...any) error {
	return &tagged{sentinel: ErrInvariant, msg: fmt.Sprintf(format, args...)}
}

// NonConvergencef returns an ErrNonConvergence-classified error.
func NonConvergencef(format string, args ...any) error {
	return &tagged{sentinel: ErrNonConvergence, msg: fmt.Sprintf(format, args...)}
}

// Capacityf returns an ErrCapacity-classified error.
func Capacityf(format string, args ...any) error {
	return &tagged{sentinel: ErrCapacity, msg: fmt.Sprintf(format, args...)}
}

// Injectedf returns an ErrInjected-classified error.
func Injectedf(format string, args ...any) error {
	return &tagged{sentinel: ErrInjected, msg: fmt.Sprintf(format, args...)}
}

// Canceled maps the context's state to the taxonomy: nil while the
// context is live, an ErrCanceled-classified error once it is canceled
// or past its deadline. The returned error also matches the underlying
// context error (context.Canceled / context.DeadlineExceeded) via
// errors.Is, so callers can still distinguish timeout from cancel.
func Canceled(ctx context.Context) error {
	obs.Add(ctx, "sched.cancel.polls", 1)
	cause := ctx.Err()
	if cause == nil {
		return nil
	}
	return &tagged{sentinel: ErrCanceled, msg: "canceled: " + cause.Error(), cause: cause}
}

// AsPanic converts a value recovered from panic into a typed error. A
// recovered error that is already classified (any sentinel above) keeps
// its classification — a goroutine that panics with an injected or
// canceled error re-surfaces as that fault, not as an invariant bug.
// Anything else becomes an ErrInvariant error naming the boundary that
// caught it.
func AsPanic(where string, recovered any) error {
	if err, ok := recovered.(error); ok {
		for _, s := range []error{ErrInvariant, ErrNonConvergence, ErrCanceled, ErrCapacity, ErrInjected} {
			if errors.Is(err, s) {
				return &tagged{sentinel: s, msg: where + ": panic: " + err.Error(), cause: err}
			}
		}
		return &tagged{sentinel: ErrInvariant, msg: fmt.Sprintf("%s: panic: %v", where, err), cause: err}
	}
	return &tagged{sentinel: ErrInvariant, msg: fmt.Sprintf("%s: panic: %v", where, recovered)}
}

// Class partitions the taxonomy by the caller's recovery policy. It is
// what a long-running caller (the apexd job executor, a sweep shard)
// switches on to decide between re-enqueueing with backoff, accepting a
// degraded result, and declaring the work terminally failed.
type Class int

const (
	// ClassFatal: invariant violations, injected faults without a more
	// specific classification, and unclassified errors. Retrying cannot
	// help and there is no estimate to fall back to.
	ClassFatal Class = iota
	// ClassRetryable: the solver ran out of budget (ErrNonConvergence).
	// A retry with a different seed or a larger budget may succeed.
	ClassRetryable
	// ClassDegradable: the design structurally exceeds a resource bound
	// (ErrCapacity). Retrying cannot help, but an analytical estimate
	// can stand in for the exact answer.
	ClassDegradable
	// ClassCanceled: the surrounding context was canceled or timed out.
	// The caller decides whether that means "shutting down" (requeue)
	// or "took too long" (retry or fail) — see Classify's doc.
	ClassCanceled
)

// String names the class for reports and job records.
func (c Class) String() string {
	switch c {
	case ClassRetryable:
		return "retryable"
	case ClassDegradable:
		return "degradable"
	case ClassCanceled:
		return "canceled"
	default:
		return "fatal"
	}
}

// Classify maps an error onto the recovery-policy classes. A nil error
// classifies as ClassFatal — callers must not classify success.
//
// Note that ClassCanceled covers both "the process is shutting down"
// and "this one computation hit its own deadline"; callers that need
// the distinction should additionally check their own context's state
// (parent canceled → shutdown) or errors.Is(err,
// context.DeadlineExceeded) on the cause chain.
func Classify(err error) Class {
	switch {
	case errors.Is(err, ErrCanceled):
		return ClassCanceled
	case errors.Is(err, ErrNonConvergence):
		return ClassRetryable
	case errors.Is(err, ErrCapacity):
		return ClassDegradable
	default:
		return ClassFatal
	}
}

// Guard runs fn and converts a panic into a typed error, so one
// poisoned computation surfaces as a per-call failure instead of
// killing the process (or a worker pool). The boundary is named in the
// resulting error.
func Guard(where string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = AsPanic(where, r)
		}
	}()
	return fn()
}
