package tech

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/ir"
)

func TestBaselineCalibration(t *testing.T) {
	m := Default()
	got := m.BaselinePECore().Area
	if math.Abs(got-BaselinePEArea) > 0.01 {
		t.Fatalf("baseline PE core area = %.2f, want %.2f", got, BaselinePEArea)
	}
}

func TestRelativeCostsSane(t *testing.T) {
	m := Default()
	mul := m.Unit("mul")
	add := m.Unit("addsub")
	mux := m.Unit("mux16")
	if mul.Area < 5*add.Area || mul.Area > 15*add.Area {
		t.Errorf("mul/add area ratio %.1f outside plausible 5-15x", mul.Area/add.Area)
	}
	if mux.Area > add.Area/2 {
		t.Errorf("mux area %.1f should be well under adder %.1f", mux.Area, add.Area)
	}
	if mul.Energy < 5*add.Energy {
		t.Errorf("mul energy should dominate add: %.3f vs %.3f", mul.Energy, add.Energy)
	}
	if mul.Delay <= add.Delay {
		t.Error("multiplier must be slower than adder")
	}
}

func TestOpCostByClass(t *testing.T) {
	m := Default()
	if m.OpCost(ir.OpAdd) != m.OpCost(ir.OpSub) {
		t.Error("add and sub must share the addsub cost")
	}
	if m.OpCost(ir.OpAdd) == m.OpCost(ir.OpMul) {
		t.Error("add and mul must differ")
	}
	if m.OpCost(ir.OpConst).Area <= 0 {
		t.Error("const register should have area")
	}
	if m.OpCost(ir.OpInput).Area != 0 {
		t.Error("graph inputs carry no PE-core area")
	}
}

func TestUnknownPrimitiveRecordsError(t *testing.T) {
	m := Default()
	if err := m.Err(); err != nil {
		t.Fatalf("fresh model already has error: %v", err)
	}
	if c := m.Unit("warpcore"); c != (Cost{}) {
		t.Fatalf("unknown primitive returned nonzero cost %+v", c)
	}
	if !errors.Is(m.Err(), fault.ErrInvariant) {
		t.Fatalf("Err() = %v, want ErrInvariant", m.Err())
	}
	if !strings.Contains(m.Err().Error(), "warpcore") {
		t.Fatalf("error lost the primitive name: %v", m.Err())
	}
	// A valid lookup afterwards still works and keeps the sticky error.
	if m.Unit("addsub").Area <= 0 {
		t.Fatal("valid lookup broken after error")
	}
	if m.Err() == nil {
		t.Fatal("sticky error was cleared")
	}
}

func TestMemTileBiggerThanPE(t *testing.T) {
	m := Default()
	if m.MemTile().Area < 5*m.BaselinePECore().Area {
		t.Errorf("memory tile (%.0f) should dwarf the PE core (%.0f)",
			m.MemTile().Area, m.BaselinePECore().Area)
	}
}

func TestConnectionBoxScalesWithInputs(t *testing.T) {
	m := Default()
	cb2 := m.ConnectionBox(2, 0)
	cb3 := m.ConnectionBox(3, 0)
	if cb3.Area <= cb2.Area {
		t.Error("CB area must grow with input count")
	}
	diff := cb3.Area - cb2.Area
	if math.Abs(diff-m.Unit("cb16").Area) > 1e-9 {
		t.Errorf("CB area increment %.2f != unit cb16 %.2f", diff, m.Unit("cb16").Area)
	}
}

func TestSwitchBoxNontrivial(t *testing.T) {
	m := Default()
	sb := m.SwitchBox()
	if sb.Area <= 0 || sb.Energy <= 0 || sb.Delay <= 0 {
		t.Errorf("switch box cost degenerate: %+v", sb)
	}
}

func TestAllClassesPresent(t *testing.T) {
	m := Default()
	for _, op := range ir.AllComputeOps() {
		c := m.OpCost(op)
		if c.Area <= 0 {
			t.Errorf("op %s has zero area", op)
		}
		if c.Delay <= 0 {
			t.Errorf("op %s has zero delay", op)
		}
	}
}

func TestClockPeriodConsistentWithPE(t *testing.T) {
	m := Default()
	// A single unpipelined multiply must fit in the paper's 1.1ns clock.
	if d := m.BaselinePECore().Delay; d >= ClockPeriodPS {
		t.Errorf("baseline PE path %.0f ps exceeds the %.0f ps clock", d, ClockPeriodPS)
	}
}
