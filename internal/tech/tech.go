// Package tech provides the technology model: per-primitive area, energy,
// and delay figures for the 16-bit datapath primitives, plus interconnect
// (switch box, connection box), register, and SRAM models.
//
// The APEX paper obtains these numbers by synthesizing each primitive with
// Synopsys Design Compiler in a commercial process. This reproduction uses
// a calibrated standard-cell-ratio model instead: relative costs follow
// well-known synthesis ratios (a 16x16 multiplier is roughly 8-10 adders,
// a 2:1 mux is a small fraction of an adder, and so on), and a single
// global calibration factor scales the model so that the baseline PE core
// of the paper's Fig. 1 lands at 988.81 um^2, the value the paper reports
// in Table 2. All evaluation results in the paper are relative
// comparisons, which a consistent model of this kind preserves.
package tech

import (
	"sync"

	"repro/internal/fault"
	"repro/internal/ir"
)

// Cost describes one hardware primitive.
type Cost struct {
	Area   float64 // um^2
	Energy float64 // pJ per operation (dynamic, at nominal activity)
	Delay  float64 // ps through the primitive
}

// raw per-primitive costs before calibration. Units are "adder-relative"
// but written in plausible um^2 / pJ / ps for a ~16 nm class process.
var rawUnit = map[string]Cost{
	"addsub": {Area: 16, Energy: 0.055, Delay: 240},  // 16-bit adder/subtractor
	"mul":    {Area: 100, Energy: 0.600, Delay: 620}, // 16x16->16 multiplier
	"shift":  {Area: 20, Energy: 0.040, Delay: 200},  // 16-bit barrel shifter
	"logic":  {Area: 8, Energy: 0.010, Delay: 50},    // 16-bit bitwise unit
	"cmp":    {Area: 10, Energy: 0.012, Delay: 180},  // 16-bit comparator
	"minmax": {Area: 20, Energy: 0.030, Delay: 260},  // comparator + mux
	"abs":    {Area: 12, Energy: 0.020, Delay: 220},  // negate + mux
	"sel":    {Area: 6, Energy: 0.006, Delay: 40},    // 16-bit 2:1 mux
	"lut":    {Area: 10, Energy: 0.003, Delay: 45},   // 3-in 1-bit LUT

	"mux16":   {Area: 3.5, Energy: 0.003, Delay: 30}, // 16-bit 2:1 routing mux (per extra input)
	"reg16":   {Area: 11, Energy: 0.008, Delay: 45},  // 16-bit register
	"reg1":    {Area: 1.2, Energy: 0.001, Delay: 40}, // 1-bit register
	"creg16":  {Area: 14, Energy: 0.002, Delay: 0},   // constant register (rarely toggles)
	"creg1":   {Area: 1.5, Energy: 0.0002, Delay: 0},
	"regfile": {Area: 450, Energy: 0.050, Delay: 170}, // register file in the baseline PE tile
	"cfgbit":  {Area: 0.5, Energy: 0.0001, Delay: 0},  // one configuration bit
	"decode":  {Area: 12, Energy: 0.008, Delay: 55},   // instruction decode per PE
	"aluctrl": {Area: 120, Energy: 0.020, Delay: 40},  // baseline ALU control/flag logic

	// Interconnect. The paper's SB has 5 incoming/outgoing 16-bit tracks
	// per direction; a CB is a wide mux from the adjacent tracks into one
	// tile input.
	"sb":      {Area: 620, Energy: 0.090, Delay: 95},  // switch box, per tile
	"sbtrack": {Area: 31, Energy: 0.005, Delay: 95},   // one SB track's share
	"cb16":    {Area: 110, Energy: 0.025, Delay: 70},  // connection box per 16-bit input
	"cb1":     {Area: 11, Energy: 0.003, Delay: 55},   // connection box per 1-bit input
	"pipereg": {Area: 12, Energy: 0.008, Delay: 45},   // SB track pipeline register
	"sram2kb": {Area: 2600, Energy: 1.10, Delay: 900}, // one 2KB SRAM macro
	"memctrl": {Area: 900, Energy: 0.150, Delay: 300},
	"iopad":   {Area: 120, Energy: 0.050, Delay: 60},
	"clktree": {Area: 9, Energy: 0.004, Delay: 0},  // per-tile clock overhead
	"wire":    {Area: 0, Energy: 0.002, Delay: 18}, // per routed hop
}

// Model is a calibrated technology model. The zero value is unusable; get
// one from Default().
//
// Lookup errors are sticky: asking for an unknown primitive records the
// first such error on the model (retrievable with Err) and returns a zero
// Cost, so cost roll-ups keep their value-only signatures while a typo in a
// primitive name still surfaces as a typed error instead of a panic. The
// error record is mutex-guarded because one Model is shared across
// evaluation workers.
type Model struct {
	scale float64 // area calibration factor
	unit  map[string]Cost

	mu  sync.Mutex
	err error
}

// fail records the first lookup error. Safe for concurrent use.
func (m *Model) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.mu.Unlock()
}

// Err reports the first unknown-primitive lookup recorded on the model, or
// nil. Safe for concurrent use.
func (m *Model) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// Default returns the calibrated model: primitive ratios from rawUnit,
// scaled so that the baseline PE core area equals BaselinePEArea.
func Default() *Model {
	m := &Model{scale: 1, unit: rawUnit}
	raw := m.baselinePECoreArea()
	m.scale = BaselinePEArea / raw
	return m
}

// BaselinePEArea is the paper's Table 2 baseline PE core area in um^2.
const BaselinePEArea = 988.81

// ClockPeriodPS is the paper's CGRA clock period (1.1 ns).
const ClockPeriodPS = 1100.0

// Unit returns the calibrated cost of a named primitive. An unknown name
// (a programming error, not an input error) yields a zero Cost and records
// a sticky fault.ErrInvariant on the model; see Model.Err.
func (m *Model) Unit(name string) Cost {
	c, ok := m.unit[name]
	if !ok {
		m.fail(fault.Invariantf("tech: unknown primitive %q", name))
		return Cost{}
	}
	c.Area *= m.scale
	return c
}

// OpCost returns the calibrated cost of the functional unit implementing
// the given IR op (by hardware class).
func (m *Model) OpCost(op ir.Op) Cost {
	class := op.HWClass()
	if class == "" {
		// Structural ops: registers and constants.
		switch op {
		case ir.OpReg, ir.OpMem:
			return m.Unit("reg16")
		case ir.OpRegFileFIFO:
			return m.Unit("regfile")
		case ir.OpConst:
			return m.Unit("creg16")
		case ir.OpConstB:
			return m.Unit("creg1")
		default:
			return Cost{}
		}
	}
	return m.Unit(class)
}

// HWClassCost returns the calibrated cost of a hardware-class block.
func (m *Model) HWClassCost(class string) Cost { return m.Unit(class) }

// baselinePECoreArea computes the (uncalibrated) area of the paper's
// Fig. 1 baseline PE core: a general ALU (adder/subtractor, multiplier,
// shifter, logic unit, comparator, min/max, abs, select), a bit-operation
// LUT, the register file, the ALU control and flag logic, two 16-bit and
// three 1-bit constant registers, operand muxes, and instruction decode.
// The generality overhead (register file, control, wide decode) is what a
// specialized PE sheds — the paper's PE 1 for camera is 3.4x smaller than
// the baseline while keeping the same arithmetic blocks.
func (m *Model) baselinePECoreArea() float64 {
	a := 0.0
	for _, block := range []string{"addsub", "mul", "shift", "logic", "cmp", "minmax", "abs", "sel", "lut"} {
		a += m.unit[block].Area
	}
	a += m.unit["regfile"].Area
	a += m.unit["aluctrl"].Area
	a += 2 * m.unit["creg16"].Area
	a += 3 * m.unit["creg1"].Area
	// Operand routing: two input muxes per ALU port (flexible intraconnect
	// of the baseline design) and the output mux across 9 blocks.
	a += 4 * m.unit["mux16"].Area
	a += 8 * m.unit["mux16"].Area
	a += m.unit["decode"].Area
	a += 24 * m.unit["cfgbit"].Area
	return a
}

// BaselinePECore returns the calibrated area/energy/delay roll-up of the
// baseline PE core. Energy is per executed operation (average across the
// blocks, dominated by whichever block is active plus decode and operand
// mux overhead — the multiplier path is used for the energy figure scale).
func (m *Model) BaselinePECore() Cost {
	area := m.baselinePECoreArea() * m.scale
	// Average operation energy: active block plus always-on overhead.
	// Use a weighted mix typical of the paper's applications (heavy
	// multiply-add): 0.35*mul + 0.45*addsub + 0.20*(other light ops),
	// plus the baseline's control, register file, and decode overheads.
	e := 0.35*m.unit["mul"].Energy + 0.45*m.unit["addsub"].Energy + 0.20*m.unit["cmp"].Energy
	e += m.unit["decode"].Energy + m.unit["aluctrl"].Energy + m.unit["regfile"].Energy
	e += 12 * m.unit["mux16"].Energy * 0.25
	// Critical path: operand mux -> multiplier -> output mux.
	d := m.unit["mux16"].Delay + m.unit["mul"].Delay + m.unit["mux16"].Delay
	return Cost{Area: area, Energy: e, Delay: d}
}

// MemTile returns the cost of one memory tile: two 2KB SRAM banks plus
// address generators and control (paper Section 5).
func (m *Model) MemTile() Cost {
	c := Cost{}
	c.Area = (2*m.unit["sram2kb"].Area + m.unit["memctrl"].Area) * m.scale
	c.Energy = 0.5*m.unit["sram2kb"].Energy + m.unit["memctrl"].Energy
	c.Delay = m.unit["sram2kb"].Delay
	return c
}

// SwitchBox returns the per-tile switch box cost (5 tracks x 4 dirs).
func (m *Model) SwitchBox() Cost {
	c := m.Unit("sb")
	return c
}

// ConnectionBox returns the cost of connection boxes for a tile with the
// given number of 16-bit and 1-bit inputs.
func (m *Model) ConnectionBox(in16, in1 int) Cost {
	c16 := m.Unit("cb16")
	c1 := m.Unit("cb1")
	return Cost{
		Area:   float64(in16)*c16.Area + float64(in1)*c1.Area,
		Energy: float64(in16)*c16.Energy + float64(in1)*c1.Energy,
		Delay:  c16.Delay,
	}
}
